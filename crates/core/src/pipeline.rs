//! Pipeline operators and job-spec builders (paper Figure 23).
//!
//! The decoupled framework builds three jobs:
//!
//! * **intake job** — `Adapter → Round-robin Partitioner → Intake
//!   Partition Holder (passive)`; runs for the feed's lifetime;
//! * **computing job** — `Collector+Parser → UDF Evaluator → Feed
//!   Pipeline Sink`; deployed once, invoked per batch;
//! * **storage job** — `Storage Partition Holder (active) → Hash
//!   Partitioner → Storage Partition`; runs for the feed's lifetime.
//!
//! The old framework ("static ingestion") couples everything in one job:
//! `Adapter+Parser+UDF (intake nodes) → Hash Partitioner → Storage
//! Partition`, with UDF state built once per feed (Model 3).
//!
//! Fault-tolerance hooks (see `idea-ft`): the adapter source honours the
//! checkpoint [`PauseGate`] and replays from committed offsets after a
//! restart; parse/enrich/storage failures are dispatched through the
//! feed's per-stage [`ErrorPolicy`]; a [`FaultInjector`] (when a fault
//! plan is attached) deterministically injects disconnects, poison
//! records, UDF faults and slow storage.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use idea_adm::{Datatype, Value};
use idea_ft::{CheckpointStore, DeadLetterSink, ErrorPolicy, Fallback, FaultInjector, PauseGate};
use idea_hyracks::{
    ConnectorSpec, Frame, FrameSink, HolderMode, JobSpec, Operator, PartitionHolder, TaskContext,
};
use idea_obs::MetricsScope;
use idea_query::{apply_function, Catalog, ExecContext, PlanCache};
use parking_lot::Mutex;

use crate::error::IngestError;
use crate::metrics::FeedMetrics;
use crate::models::{ComputingModel, FeedSpec};

/// State shared by all operators of one feed attempt.
pub(crate) struct FeedShared {
    pub spec: Arc<FeedSpec>,
    pub catalog: Arc<Catalog>,
    pub metrics: Arc<FeedMetrics>,
    /// This feed's registry scope (`feed/<name>`); holder instruments
    /// hang off it.
    pub obs: MetricsScope,
    /// User-requested stop; survives supervisor restarts.
    pub stop: Arc<AtomicBool>,
    /// Supervisor-requested abort of *this attempt* (fresh per attempt).
    pub abort: Arc<AtomicBool>,
    /// Shared compiled plans — the predeployed aspect of the computing
    /// job (reused across invocations when `spec.predeploy`).
    pub plan_cache: Arc<PlanCache>,
    /// Model-3 contexts, one per node, surviving across computing jobs.
    pub stream_ctxs: Arc<Mutex<HashMap<usize, ExecContext>>>,
    /// Target-dataset datatype for parse-time validation.
    pub datatype: Datatype,
    /// Deterministic fault injector (only when a fault plan is attached).
    pub injector: Option<Arc<FaultInjector>>,
    /// Dead-letter capture (only when a policy asks for it).
    pub dead_letter: Option<Arc<DeadLetterSink>>,
    /// Per-intake-partition emitted/committed offsets.
    pub ckpt: Arc<CheckpointStore>,
    /// Checkpoint pause barrier between the driver and the adapters
    /// (fresh per attempt).
    pub gate: Arc<PauseGate>,
    /// Committed offsets at attempt start — how many records each
    /// adapter partition skips before emitting (replay position).
    pub ckpt_base: Vec<u64>,
}

impl FeedShared {
    fn holder(&self, ctx: &TaskContext, name: &str) -> idea_hyracks::Result<Arc<PartitionHolder>> {
        ctx.cluster.node(ctx.node).holders().lookup(name)
    }

    fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || self.abort.load(Ordering::Relaxed)
    }

    fn push_dead_letter(&self, stage: &str, error: &str, payload: &str) {
        if let Some(sink) = &self.dead_letter {
            sink.push(stage, error, payload);
        }
    }
}

/// Leaves the pause gate when the adapter task exits by any path, so a
/// crashed adapter can never wedge quiescence.
struct GateGuard(Arc<PauseGate>);

impl GateGuard {
    fn join(gate: Arc<PauseGate>) -> GateGuard {
        gate.join();
        GateGuard(gate)
    }
}

impl Drop for GateGuard {
    fn drop(&mut self) {
        self.0.leave();
    }
}

// ---- intake job ------------------------------------------------------

/// Stage 0: the adapter, wrapped as a source operator.
///
/// The factory result is carried here (not unwrapped in the stage
/// closure) so adapter construction errors fail the intake job instead
/// of panicking its task thread.
struct AdapterSource {
    adapter: Option<crate::Result<Box<dyn crate::adapter::Adapter>>>,
    shared: Arc<FeedShared>,
}

fn flush_raw(
    shared: &FeedShared,
    buf: &mut Vec<Value>,
    out: &mut dyn FrameSink,
) -> idea_hyracks::Result<()> {
    if !buf.is_empty() {
        shared.metrics.records_ingested.add(buf.len() as u64);
        out.push(Frame::from_records(std::mem::take(buf)))?;
    }
    Ok(())
}

impl Operator for AdapterSource {
    fn next_frame(
        &mut self,
        _f: Frame,
        _out: &mut dyn FrameSink,
        _ctx: &mut TaskContext,
    ) -> idea_hyracks::Result<()> {
        unreachable!("adapter is a source")
    }

    fn run_source(
        &mut self,
        out: &mut dyn FrameSink,
        ctx: &mut TaskContext,
    ) -> idea_hyracks::Result<()> {
        let shared = self.shared.clone();
        let mut adapter = self.adapter.take().expect("source runs once")?;
        let p = ctx.partition;
        // Replay: skip everything the last committed checkpoint already
        // covers. The upstream source re-serves from the beginning; the
        // committed offset is this partition's resume position.
        let skip = shared.ckpt_base.get(p).copied().unwrap_or(0);
        for _ in 0..skip {
            if adapter.next().is_none() {
                break;
            }
        }
        let _gate = GateGuard::join(shared.gate.clone());
        let mut last_ack = 0u64;
        let cap = shared.spec.frame_capacity;
        // Ship partial frames after this long so slow sources still
        // deliver promptly (real feed adapters flush on a timer too).
        const FLUSH_INTERVAL: std::time::Duration = std::time::Duration::from_millis(10);
        let mut buf = Vec::with_capacity(cap);
        let mut last_flush = std::time::Instant::now();
        loop {
            if shared.should_stop() {
                break;
            }
            if shared.gate.paused() {
                // Checkpoint in progress: flush, ack the epoch once,
                // and hold emission until the driver resumes.
                flush_raw(&shared, &mut buf, out)?;
                let epoch = shared.gate.epoch();
                if last_ack != epoch {
                    shared.gate.ack();
                    last_ack = epoch;
                }
                // Park on the gate's condvar: resume wakes us at once;
                // the timeout keeps the stop flag observable.
                shared.gate.wait_resume(std::time::Duration::from_millis(1));
                continue;
            }
            // Absolute index of the record about to be emitted — fault
            // coordinates survive restarts because they are offsets, not
            // per-attempt counts.
            let idx = shared.ckpt.live(p);
            if let Some(inj) = &shared.injector {
                if inj.take_adapter_disconnect(p, idx) {
                    match &shared.spec.supervision.adapter {
                        ErrorPolicy::Retry { policy, .. } => {
                            shared.metrics.retries.inc();
                            std::thread::sleep(policy.delay(0));
                            // Reconnected; resume emitting below.
                        }
                        ErrorPolicy::Skip | ErrorPolicy::SkipToDeadLetter => {}
                        ErrorPolicy::Abort | ErrorPolicy::RestartFeed => {
                            return Err(idea_hyracks::HyracksError::Operator(format!(
                                "adapter on intake partition {p} disconnected"
                            )));
                        }
                    }
                }
            }
            match adapter.next() {
                Some(mut raw) => {
                    if let Some(inj) = &shared.injector {
                        if inj.take_poison(p, idx) {
                            // NUL bytes can never start valid JSON, so
                            // this reliably fails the parser downstream.
                            raw = format!("\u{0}poison\u{0}{raw}");
                        }
                    }
                    buf.push(Value::Str(raw));
                    shared.ckpt.note_emitted(p);
                    if buf.len() >= cap
                        || (!buf.is_empty() && last_flush.elapsed() >= FLUSH_INTERVAL)
                    {
                        flush_raw(&shared, &mut buf, out)?;
                        last_flush = std::time::Instant::now();
                    }
                }
                None => break,
            }
        }
        flush_raw(&shared, &mut buf, out)
    }
}

/// Stage 1: forwards round-robin-partitioned raw frames into the local
/// passive intake holder; emits the EOF marker when the adapters finish.
struct IntakeSink {
    shared: Arc<FeedShared>,
    holder: Option<Arc<PartitionHolder>>,
}

impl Operator for IntakeSink {
    fn open(&mut self, ctx: &mut TaskContext) -> idea_hyracks::Result<()> {
        self.holder = Some(self.shared.holder(ctx, &self.shared.spec.intake_holder())?);
        Ok(())
    }

    fn next_frame(
        &mut self,
        frame: Frame,
        _out: &mut dyn FrameSink,
        _ctx: &mut TaskContext,
    ) -> idea_hyracks::Result<()> {
        self.holder.as_ref().unwrap().push_frame(frame)
    }

    fn close(
        &mut self,
        _out: &mut dyn FrameSink,
        _ctx: &mut TaskContext,
    ) -> idea_hyracks::Result<()> {
        // "the intake job ... adds a special 'EOF' data record into its
        // queue" (paper §6.1).
        self.holder.as_ref().unwrap().push_eof()
    }
}

/// Builds the intake job spec.
pub(crate) fn build_intake_spec(shared: &Arc<FeedShared>) -> JobSpec {
    let s0 = shared.clone();
    let s1 = shared.clone();
    let mut spec = JobSpec::new(format!("{}::intake", shared.spec.name))
        .stage_on(
            "adapter",
            shared.spec.intake_nodes.clone(),
            ConnectorSpec::RoundRobin,
            Arc::new(move |ctx: &TaskContext| {
                let adapter = (s0.spec.adapter)(ctx.partition, ctx.partitions);
                Box::new(AdapterSource { adapter: Some(adapter), shared: s0.clone() })
                    as Box<dyn Operator>
            }),
        )
        .stage(
            "intake-sink",
            ConnectorSpec::OneToOne,
            Arc::new(move |_ctx: &TaskContext| {
                Box::new(IntakeSink { shared: s1.clone(), holder: None }) as Box<dyn Operator>
            }),
        );
    spec.frame_capacity = shared.spec.frame_capacity;
    spec.channel_capacity = shared.spec.holder_capacity;
    spec
}

// ---- computing job ----------------------------------------------------

/// Stage 0: pulls one batch from the local intake holder and parses raw
/// JSON into ADM records (parsing lives in the computing job in the new
/// framework — that is what decouples intake from parsing, §7.1).
struct CollectorParser {
    shared: Arc<FeedShared>,
}

impl CollectorParser {
    /// Dispatches one unparseable record through the parse policy.
    /// Parsing is deterministic, so a `Retry` policy degrades straight
    /// to its fallback.
    fn parse_failure(&self, err: &str, raw: &str) -> idea_hyracks::Result<()> {
        let fallback = match &self.shared.spec.supervision.parse {
            ErrorPolicy::Skip => Fallback::Skip,
            ErrorPolicy::SkipToDeadLetter => Fallback::DeadLetter,
            ErrorPolicy::Retry { fallback, .. } => *fallback,
            ErrorPolicy::Abort | ErrorPolicy::RestartFeed => Fallback::Abort,
        };
        self.shared.metrics.parse_errors.inc();
        match fallback {
            Fallback::Skip => Ok(()),
            Fallback::DeadLetter => {
                self.shared.push_dead_letter("parse", err, raw);
                Ok(())
            }
            Fallback::Abort => Err(idea_hyracks::HyracksError::Operator(format!(
                "feed {}: parse error: {err}",
                self.shared.spec.name
            ))),
        }
    }
}

impl Operator for CollectorParser {
    fn next_frame(
        &mut self,
        _f: Frame,
        _out: &mut dyn FrameSink,
        _ctx: &mut TaskContext,
    ) -> idea_hyracks::Result<()> {
        unreachable!("collector is a source")
    }

    fn run_source(
        &mut self,
        out: &mut dyn FrameSink,
        ctx: &mut TaskContext,
    ) -> idea_hyracks::Result<()> {
        let holder = self.shared.holder(ctx, &self.shared.spec.intake_holder())?;
        // During a checkpoint drain the adapters are paused, so blocking
        // for a full batch would hang — take whatever is buffered.
        let batch = if self.shared.gate.paused() {
            holder.try_pull_batch(self.shared.spec.batch_size)?
        } else {
            holder.pull_batch(self.shared.spec.batch_size)?
        };
        let cap = self.shared.spec.frame_capacity;
        let mut buf = Vec::with_capacity(cap.min(batch.len()));
        for rec in batch.into_records() {
            let Some(text) = rec.as_str() else {
                self.parse_failure("raw record is not a string", &rec.to_string())?;
                continue;
            };
            match idea_adm::json::parse(text.as_bytes()) {
                Ok(parsed) => {
                    if let Err(e) = self.shared.datatype.validate(&parsed) {
                        self.parse_failure(&e.to_string(), text)?;
                        continue;
                    }
                    buf.push(parsed);
                    if buf.len() >= cap {
                        out.push(Frame::from_records(std::mem::take(&mut buf)))?;
                    }
                }
                Err(e) => {
                    self.parse_failure(&e.to_string(), text)?;
                }
            }
        }
        if !buf.is_empty() {
            out.push(Frame::from_records(buf))?;
        }
        Ok(())
    }
}

/// Stage 1: the UDF evaluator. Context lifetime enforces the computing
/// model (fresh per job = Model 2; refreshed per record = Model 1;
/// pulled from feed state = Model 3).
struct UdfEvaluator {
    shared: Arc<FeedShared>,
    ctx_: Option<ExecContext>,
}

impl UdfEvaluator {
    fn enrich(&mut self, record: &Value) -> Result<Vec<Value>, IngestError> {
        let function = self.shared.spec.function.as_ref().expect("checked by caller");
        let ctx = self.ctx_.as_mut().expect("open() ran");
        if self.shared.spec.model == ComputingModel::PerRecord {
            // Model 1: intermediate state refreshed for every record.
            ctx.refresh();
        }
        let out = apply_function(ctx, function, std::slice::from_ref(record))?;
        match out {
            Value::Array(items) => {
                for i in &items {
                    if !matches!(i, Value::Object(_)) {
                        return Err(IngestError::Query(idea_query::QueryError::Eval(format!(
                            "UDF {function} must produce objects, got {}",
                            i.type_name()
                        ))));
                    }
                }
                Ok(items)
            }
            obj @ Value::Object(_) => Ok(vec![obj]),
            other => Err(IngestError::Query(idea_query::QueryError::Eval(format!(
                "UDF {function} must produce objects, got {}",
                other.type_name()
            )))),
        }
    }

    /// Evaluates the UDF on one record, injecting scheduled faults and
    /// dispatching failures through the enrich policy.
    fn process(
        &mut self,
        rec: &Value,
        node: usize,
        enriched: &mut Vec<Value>,
    ) -> idea_hyracks::Result<()> {
        let injected = self.shared.injector.as_ref().and_then(|inj| {
            let seq = inj.next_enrich_seq(node);
            inj.take_udf_fault(node, seq)
        });
        let first = match injected {
            Some(fault) => {
                if let Some(delay) = fault.delay {
                    std::thread::sleep(delay);
                }
                Err(IngestError::Feed("injected UDF fault".into()))
            }
            None => self.enrich(rec),
        };
        let err = match first {
            Ok(values) => {
                enriched.extend(values);
                return Ok(());
            }
            Err(e) => e,
        };
        let feed = self.shared.spec.name.clone();
        let abort = move |e: &IngestError| {
            Err(idea_hyracks::HyracksError::Operator(format!("feed {feed}: UDF failed: {e}")))
        };
        match self.shared.spec.supervision.enrich.clone() {
            ErrorPolicy::Abort | ErrorPolicy::RestartFeed => abort(&err),
            ErrorPolicy::Skip => {
                self.shared.metrics.enrich_errors.inc();
                Ok(())
            }
            ErrorPolicy::SkipToDeadLetter => {
                self.shared.metrics.enrich_errors.inc();
                self.shared.push_dead_letter("enrich", &err.to_string(), &rec.to_string());
                Ok(())
            }
            ErrorPolicy::Retry { policy, fallback } => {
                let mut last = err;
                for attempt in 0..policy.max_attempts {
                    self.shared.metrics.retries.inc();
                    std::thread::sleep(policy.delay(attempt));
                    match self.enrich(rec) {
                        Ok(values) => {
                            enriched.extend(values);
                            return Ok(());
                        }
                        Err(e) => last = e,
                    }
                }
                match fallback {
                    Fallback::Skip => {
                        self.shared.metrics.enrich_errors.inc();
                        Ok(())
                    }
                    Fallback::DeadLetter => {
                        self.shared.metrics.enrich_errors.inc();
                        self.shared.push_dead_letter("enrich", &last.to_string(), &rec.to_string());
                        Ok(())
                    }
                    Fallback::Abort => abort(&last),
                }
            }
        }
    }
}

impl Operator for UdfEvaluator {
    fn open(&mut self, ctx: &mut TaskContext) -> idea_hyracks::Result<()> {
        let fresh = || {
            ExecContext::with_plan_cache(
                self.shared.catalog.clone(),
                self.shared.plan_cache.clone(),
            )
        };
        self.ctx_ = Some(match self.shared.spec.model {
            ComputingModel::PerBatch | ComputingModel::PerRecord => fresh(),
            ComputingModel::Stream => {
                self.shared.stream_ctxs.lock().remove(&ctx.node).unwrap_or_else(fresh)
            }
        });
        Ok(())
    }

    fn next_frame(
        &mut self,
        frame: Frame,
        out: &mut dyn FrameSink,
        ctx: &mut TaskContext,
    ) -> idea_hyracks::Result<()> {
        if self.shared.spec.function.is_none() {
            // No UDF attached: pass through (nothing to inject either —
            // UDF faults target enrichment calls).
            let records: Vec<Value> = frame.into_records().into_iter().collect();
            self.shared.metrics.records_enriched.add(records.len() as u64);
            if !records.is_empty() {
                out.push(Frame::from_records(records))?;
            }
            return Ok(());
        }
        let mut enriched = Vec::with_capacity(frame.len());
        for rec in frame.into_records() {
            self.process(&rec, ctx.node, &mut enriched)?;
        }
        self.shared.metrics.records_enriched.add(enriched.len() as u64);
        if !enriched.is_empty() {
            out.push(Frame::from_records(enriched))?;
        }
        Ok(())
    }

    fn close(
        &mut self,
        _out: &mut dyn FrameSink,
        ctx: &mut TaskContext,
    ) -> idea_hyracks::Result<()> {
        if self.shared.spec.model == ComputingModel::Stream {
            // Model 3: the context (and its stale intermediate state)
            // survives to the next computing job.
            if let Some(c) = self.ctx_.take() {
                self.shared.stream_ctxs.lock().insert(ctx.node, c);
            }
        }
        Ok(())
    }
}

/// Stage 2: the feed pipeline sink — pushes enriched frames into the
/// local *active* storage holder.
struct FeedPipelineSink {
    shared: Arc<FeedShared>,
    holder: Option<Arc<PartitionHolder>>,
}

impl Operator for FeedPipelineSink {
    fn open(&mut self, ctx: &mut TaskContext) -> idea_hyracks::Result<()> {
        self.holder = Some(self.shared.holder(ctx, &self.shared.spec.storage_holder())?);
        Ok(())
    }

    fn next_frame(
        &mut self,
        frame: Frame,
        _out: &mut dyn FrameSink,
        _ctx: &mut TaskContext,
    ) -> idea_hyracks::Result<()> {
        self.holder.as_ref().unwrap().push_frame(frame)
    }
}

/// Builds the computing job spec. Invoked repeatedly; when predeployed,
/// this function runs once per feed.
pub(crate) fn build_computing_spec(shared: &Arc<FeedShared>) -> JobSpec {
    let s0 = shared.clone();
    let s1 = shared.clone();
    let s2 = shared.clone();
    let mut spec = JobSpec::new(format!("{}::computing", shared.spec.name))
        .stage(
            "collector-parser",
            ConnectorSpec::OneToOne,
            Arc::new(move |_ctx: &TaskContext| {
                Box::new(CollectorParser { shared: s0.clone() }) as Box<dyn Operator>
            }),
        )
        .stage(
            "udf-evaluator",
            ConnectorSpec::OneToOne,
            Arc::new(move |_ctx: &TaskContext| {
                Box::new(UdfEvaluator { shared: s1.clone(), ctx_: None }) as Box<dyn Operator>
            }),
        )
        .stage(
            "feed-pipeline-sink",
            ConnectorSpec::OneToOne,
            Arc::new(move |_ctx: &TaskContext| {
                Box::new(FeedPipelineSink { shared: s2.clone(), holder: None }) as Box<dyn Operator>
            }),
        );
    spec.frame_capacity = shared.spec.frame_capacity;
    spec.channel_capacity = shared.spec.holder_capacity;
    spec
}

// ---- storage job -------------------------------------------------------

/// Stage 0: drains the local active storage holder until EOF.
struct StorageHolderSource {
    shared: Arc<FeedShared>,
}

impl Operator for StorageHolderSource {
    fn next_frame(
        &mut self,
        _f: Frame,
        _out: &mut dyn FrameSink,
        _ctx: &mut TaskContext,
    ) -> idea_hyracks::Result<()> {
        unreachable!("storage holder drain is a source")
    }

    fn run_source(
        &mut self,
        out: &mut dyn FrameSink,
        ctx: &mut TaskContext,
    ) -> idea_hyracks::Result<()> {
        let holder = self.shared.holder(ctx, &self.shared.spec.storage_holder())?;
        while let Some(frame) = holder.pull_frame()? {
            out.push(frame)?;
        }
        Ok(())
    }
}

/// Terminal stage: writes records into this node's storage partition.
struct StorageWriter {
    shared: Arc<FeedShared>,
    partition: Option<Arc<idea_storage::Dataset>>,
}

impl Operator for StorageWriter {
    fn open(&mut self, ctx: &mut TaskContext) -> idea_hyracks::Result<()> {
        let ds = self
            .shared
            .catalog
            .dataset(&self.shared.spec.dataset)
            .map_err(IngestError::from)?;
        self.partition = Some(ds.partition(ctx.partition).clone());
        Ok(())
    }

    fn next_frame(
        &mut self,
        frame: Frame,
        _out: &mut dyn FrameSink,
        ctx: &mut TaskContext,
    ) -> idea_hyracks::Result<()> {
        if let Some(inj) = &self.shared.injector {
            if let Some(delay) = inj.storage_delay(ctx.node) {
                std::thread::sleep(delay);
            }
        }
        let part = self.partition.as_ref().unwrap();
        let policy = self.shared.spec.supervision.storage.clone();
        // Only clone each record up front when a failure path would
        // still need it — the default (Abort) pays nothing.
        let keep = matches!(policy, ErrorPolicy::Retry { .. }) || policy.wants_dead_letter();
        // `stored` = successful upserts; `disposed` = records fully
        // handled (stored, skipped or dead-lettered) — the checkpoint
        // quiescence check balances `disposed` against `taken`.
        let mut stored = 0u64;
        let mut disposed = 0u64;
        for rec in frame.into_records() {
            disposed += 1;
            let backup = keep.then(|| rec.clone());
            match part.upsert(rec) {
                Ok(()) => stored += 1,
                Err(e) => {
                    let err = IngestError::from(e);
                    let abort = |e: &IngestError| {
                        Err(idea_hyracks::HyracksError::Operator(format!(
                            "feed {}: storage write failed: {e}",
                            self.shared.spec.name
                        )))
                    };
                    match &policy {
                        ErrorPolicy::Abort | ErrorPolicy::RestartFeed => return abort(&err),
                        ErrorPolicy::Skip => {}
                        ErrorPolicy::SkipToDeadLetter => {
                            let payload =
                                backup.as_ref().map(|r| r.to_string()).unwrap_or_default();
                            self.shared.push_dead_letter("storage", &err.to_string(), &payload);
                        }
                        ErrorPolicy::Retry { policy: rp, fallback } => {
                            let backup = backup.as_ref().expect("kept for retry");
                            let mut last = err;
                            let mut retried_ok = false;
                            for attempt in 0..rp.max_attempts {
                                self.shared.metrics.retries.inc();
                                std::thread::sleep(rp.delay(attempt));
                                match part.upsert(backup.clone()) {
                                    Ok(()) => {
                                        stored += 1;
                                        retried_ok = true;
                                        break;
                                    }
                                    Err(e2) => last = IngestError::from(e2),
                                }
                            }
                            if !retried_ok {
                                match fallback {
                                    Fallback::Skip => {}
                                    Fallback::DeadLetter => {
                                        self.shared.push_dead_letter(
                                            "storage",
                                            &last.to_string(),
                                            &backup.to_string(),
                                        );
                                    }
                                    Fallback::Abort => return abort(&last),
                                }
                            }
                        }
                    }
                }
            }
        }
        self.shared.metrics.records_stored.add(stored);
        self.shared.metrics.storage_acked.add(disposed);
        Ok(())
    }
}

/// Builds the storage job spec. Both stages are pinned to every node:
/// the hash partitioner's target set must stay aligned with the
/// dataset's partition numbering even while some nodes are down —
/// a storage job whose writers silently moved to the surviving nodes
/// would scatter records into the wrong partitions. A pinned stage on a
/// dead node fails the job instead, and the supervisor restarts the
/// feed once the node is restored.
pub(crate) fn build_storage_spec(shared: &Arc<FeedShared>, n_nodes: usize) -> JobSpec {
    let s0 = shared.clone();
    let s1 = shared.clone();
    let all_nodes: Vec<usize> = (0..n_nodes).collect();
    let pk_field = pk_field_of(shared);
    let mut spec = JobSpec::new(format!("{}::storage", shared.spec.name))
        .stage_on(
            "storage-holder",
            all_nodes.clone(),
            ConnectorSpec::hash_on_field(&pk_field),
            Arc::new(move |_ctx: &TaskContext| {
                Box::new(StorageHolderSource { shared: s0.clone() }) as Box<dyn Operator>
            }),
        )
        .stage_on(
            "storage-writer",
            all_nodes,
            ConnectorSpec::OneToOne,
            Arc::new(move |_ctx: &TaskContext| {
                Box::new(StorageWriter { shared: s1.clone(), partition: None }) as Box<dyn Operator>
            }),
        );
    spec.frame_capacity = shared.spec.frame_capacity;
    spec.channel_capacity = shared.spec.holder_capacity;
    spec
}

fn pk_field_of(shared: &Arc<FeedShared>) -> String {
    shared
        .catalog
        .dataset(&shared.spec.dataset)
        .map(|ds| ds.partitions()[0].primary_key_field().to_string())
        .unwrap_or_else(|_| "id".to_owned())
}

// ---- static (old-framework) pipeline -------------------------------------

/// The coupled intake+parse+UDF source of the old framework: everything
/// on the intake node(s), UDF state built once per feed.
struct StaticSource {
    adapter: Option<crate::Result<Box<dyn crate::adapter::Adapter>>>,
    shared: Arc<FeedShared>,
    ctx_: Option<ExecContext>,
}

impl Operator for StaticSource {
    fn open(&mut self, _ctx: &mut TaskContext) -> idea_hyracks::Result<()> {
        // One context for the feed's lifetime: Model 3 — "the attached
        // UDF is initialized once for all incoming data" (§4.3.4).
        self.ctx_ = Some(ExecContext::with_plan_cache(
            self.shared.catalog.clone(),
            self.shared.plan_cache.clone(),
        ));
        Ok(())
    }

    fn next_frame(
        &mut self,
        _f: Frame,
        _out: &mut dyn FrameSink,
        _ctx: &mut TaskContext,
    ) -> idea_hyracks::Result<()> {
        unreachable!("static source is a source")
    }

    fn run_source(
        &mut self,
        out: &mut dyn FrameSink,
        _ctx: &mut TaskContext,
    ) -> idea_hyracks::Result<()> {
        let mut adapter = self.adapter.take().expect("source runs once")?;
        let cap = self.shared.spec.frame_capacity;
        let mut buf = Vec::with_capacity(cap);
        loop {
            if self.shared.should_stop() {
                break;
            }
            let Some(raw) = adapter.next() else { break };
            self.shared.metrics.records_ingested.inc();
            let parsed = match idea_adm::json::parse(raw.as_bytes()) {
                Ok(p) if self.shared.datatype.validate(&p).is_ok() => p,
                _ => {
                    self.shared.metrics.parse_errors.inc();
                    continue;
                }
            };
            let enriched: Vec<Value> = match &self.shared.spec.function {
                None => vec![parsed],
                Some(f) => {
                    let ctx = self.ctx_.as_mut().unwrap();
                    match apply_function(ctx, f, &[parsed]) {
                        Ok(Value::Array(items))
                            if items.iter().all(|i| matches!(i, Value::Object(_))) =>
                        {
                            items
                        }
                        Ok(obj @ Value::Object(_)) => vec![obj],
                        _ => {
                            self.shared.metrics.enrich_errors.inc();
                            continue;
                        }
                    }
                }
            };
            self.shared.metrics.records_enriched.add(enriched.len() as u64);
            for e in enriched {
                buf.push(e);
                if buf.len() >= cap {
                    out.push(Frame::from_records(std::mem::take(&mut buf)))?;
                }
            }
        }
        if !buf.is_empty() {
            out.push(Frame::from_records(buf))?;
        }
        Ok(())
    }
}

/// Builds the single-job static pipeline of the old framework.
pub(crate) fn build_static_spec(shared: &Arc<FeedShared>) -> JobSpec {
    let s0 = shared.clone();
    let s1 = shared.clone();
    let pk_field = pk_field_of(shared);
    let mut spec = JobSpec::new(format!("{}::static", shared.spec.name))
        .stage_on(
            "adapter-parser-udf",
            shared.spec.intake_nodes.clone(),
            ConnectorSpec::hash_on_field(&pk_field),
            Arc::new(move |ctx: &TaskContext| {
                let adapter = (s0.spec.adapter)(ctx.partition, ctx.partitions);
                Box::new(StaticSource { adapter: Some(adapter), shared: s0.clone(), ctx_: None })
                    as Box<dyn Operator>
            }),
        )
        .stage(
            "storage-writer",
            ConnectorSpec::OneToOne,
            Arc::new(move |_ctx: &TaskContext| {
                Box::new(StorageWriter { shared: s1.clone(), partition: None }) as Box<dyn Operator>
            }),
        );
    spec.frame_capacity = shared.spec.frame_capacity;
    spec.channel_capacity = shared.spec.holder_capacity;
    spec
}

/// Registers the feed's partition holders on every node (done before any
/// job starts so jobs can look them up). Holders are per-attempt: a
/// restarting feed unregisters the failed attempt's holders and
/// registers fresh ones, which also resets the received/taken counters
/// the checkpoint quiescence check reads.
pub(crate) fn register_holders(
    cluster: &idea_hyracks::Cluster,
    shared: &Arc<FeedShared>,
) -> idea_hyracks::Result<()> {
    for node in cluster.nodes() {
        let intake = node.holders().register(
            shared.spec.intake_holder(),
            HolderMode::Passive,
            shared.spec.holder_capacity,
        )?;
        intake.attach_obs(&shared.obs.scope(&format!("holder/intake/node{}", node.id())));
        let storage = node.holders().register(
            shared.spec.storage_holder(),
            HolderMode::Active,
            shared.spec.holder_capacity,
        )?;
        storage.attach_obs(&shared.obs.scope(&format!("holder/storage/node{}", node.id())));
    }
    Ok(())
}

/// Unregisters the feed's partition holders.
pub(crate) fn unregister_holders(cluster: &idea_hyracks::Cluster, shared: &Arc<FeedShared>) {
    for node in cluster.nodes() {
        node.holders().unregister(&shared.spec.intake_holder());
        node.holders().unregister(&shared.spec.storage_holder());
    }
}

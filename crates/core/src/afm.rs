//! The Active Feed Manager (paper §6.1): tracks active feeds, drives
//! their computing jobs, and manages feed shutdown.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use idea_hyracks::Cluster;
use idea_obs::MetricsRegistry;
use idea_query::{Catalog, PlanCache};
use parking_lot::Mutex;

use crate::error::IngestError;
use crate::metrics::{FeedMetrics, IngestionReport};
use crate::models::{FeedSpec, PipelineMode};
use crate::pipeline::{
    build_computing_spec, build_intake_spec, build_static_spec, build_storage_spec,
    register_holders, unregister_holders, FeedShared,
};
use crate::Result;

/// Handle to a running feed.
pub struct FeedHandle {
    name: String,
    stop: Arc<AtomicBool>,
    metrics: Arc<FeedMetrics>,
    driver: Mutex<Option<std::thread::JoinHandle<Result<()>>>>,
}

impl FeedHandle {
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Live metrics (updated while the feed runs).
    pub fn metrics(&self) -> &Arc<FeedMetrics> {
        &self.metrics
    }

    /// Requests the feed to stop: adapters cease producing, the pipeline
    /// drains, EOF propagates (paper §6.1's stop protocol).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Waits for the feed to finish (all jobs drained and joined) and
    /// returns the ingestion report. Idempotent `wait` is not supported:
    /// call once.
    pub fn wait(&self) -> Result<IngestionReport> {
        let handle =
            self.driver.lock().take().ok_or_else(|| {
                IngestError::Feed(format!("feed {} already waited on", self.name))
            })?;
        match handle.join() {
            Ok(Ok(())) => Ok(self.metrics.report()),
            Ok(Err(e)) => Err(e),
            Err(_) => Err(IngestError::Feed(format!("feed {} driver panicked", self.name))),
        }
    }

    /// Convenience: stop, then wait.
    pub fn stop_and_wait(&self) -> Result<IngestionReport> {
        self.stop();
        self.wait()
    }
}

/// Manages the lifecycle of all data feeds on a cluster. Owns the
/// metrics registry every feed reports into (and attaches it to the
/// cluster, so Hyracks job/task instruments land there too).
pub struct ActiveFeedManager {
    cluster: Arc<Cluster>,
    catalog: Arc<Catalog>,
    registry: Arc<MetricsRegistry>,
    active: Mutex<HashMap<String, Arc<FeedHandle>>>,
}

impl ActiveFeedManager {
    pub fn new(cluster: Arc<Cluster>, catalog: Arc<Catalog>) -> Self {
        assert_eq!(
            cluster.node_count(),
            catalog.partitions(),
            "catalog partitions must match cluster size (one storage partition per node)"
        );
        let registry = MetricsRegistry::new();
        cluster.attach_metrics(registry.clone());
        ActiveFeedManager { cluster, catalog, registry, active: Mutex::new(HashMap::new()) }
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The registry all feeds on this manager report into. Snapshot it
    /// for a live view of every counter, gauge, and histogram.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Names of currently running feeds.
    pub fn active_feeds(&self) -> Vec<String> {
        self.active.lock().keys().cloned().collect()
    }

    /// Starts a feed and returns its handle.
    pub fn start(&self, spec: FeedSpec) -> Result<Arc<FeedHandle>> {
        // Fail fast on config errors.
        let spec = spec.build(self.cluster.node_count())?;
        let dataset = self.catalog.dataset(&spec.dataset)?;
        if let Some(f) = &spec.function {
            self.catalog.function(f)?;
        }
        let mut active = self.active.lock();
        if active.contains_key(&spec.name) {
            return Err(IngestError::Feed(format!("feed {} is already running", spec.name)));
        }

        // A feed restarted under the same name gets fresh instruments;
        // stale counters from the previous run must not leak into it.
        let scope_name = format!("feed/{}", spec.name);
        self.registry.remove_scope(&scope_name);
        let obs = self.registry.scope(scope_name);
        let metrics = Arc::new(FeedMetrics::in_scope(&obs));

        // Storage stats for the target dataset, sampled at snapshot
        // time. Weak refs: the registry must not keep a dropped dataset
        // alive.
        for (metric, f) in [
            ("flushes", idea_storage::Dataset::flush_count as fn(&idea_storage::Dataset) -> u64),
            ("merges", idea_storage::Dataset::merge_count),
            ("components", |d: &idea_storage::Dataset| d.component_count() as u64),
        ] {
            let weak = Arc::downgrade(&dataset);
            self.registry.probe(format!("storage/{}/{metric}", spec.dataset), move || {
                weak.upgrade()
                    .map_or(0, |ds| ds.partitions().iter().map(|p| f(p)).sum::<u64>() as i64)
            });
        }

        let datatype = dataset.partitions()[0].datatype().clone();
        let shared = Arc::new(FeedShared {
            spec: Arc::new(spec),
            catalog: self.catalog.clone(),
            metrics,
            obs,
            stop: Arc::new(AtomicBool::new(false)),
            plan_cache: PlanCache::new(),
            stream_ctxs: Arc::new(Mutex::new(HashMap::new())),
            datatype,
        });

        let handle = Arc::new(FeedHandle {
            name: shared.spec.name.clone(),
            stop: shared.stop.clone(),
            metrics: shared.metrics.clone(),
            driver: Mutex::new(None),
        });

        let cluster = self.cluster.clone();
        let shared2 = shared.clone();
        let driver = std::thread::Builder::new()
            .name(format!("afm::{}", shared.spec.name))
            .spawn(move || drive_feed(cluster, shared2))
            .map_err(|e| IngestError::Feed(format!("cannot spawn feed driver: {e}")))?;
        *handle.driver.lock() = Some(driver);
        active.insert(shared.spec.name.clone(), handle.clone());
        Ok(handle)
    }

    /// Requests a named feed to stop (returns its handle for waiting).
    pub fn stop(&self, name: &str) -> Result<Arc<FeedHandle>> {
        let handle = self
            .active
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| IngestError::Feed(format!("no running feed named {name}")))?;
        handle.stop();
        Ok(handle)
    }

    /// Forgets a finished feed (called by `wait_feed`).
    pub fn remove(&self, name: &str) {
        self.active.lock().remove(name);
    }

    /// Stops a feed, waits for it, and removes it.
    pub fn stop_and_wait(&self, name: &str) -> Result<IngestionReport> {
        let handle = self.stop(name)?;
        let report = handle.wait();
        self.remove(name);
        report
    }
}

/// The per-feed driver: starts the long-running jobs, keeps invoking
/// computing jobs until the intake drains, then shuts the pipeline down.
fn drive_feed(cluster: Arc<Cluster>, shared: Arc<FeedShared>) -> Result<()> {
    shared.metrics.mark_started();
    match shared.spec.mode {
        PipelineMode::Static => {
            let spec = build_static_spec(&shared);
            let handle = idea_hyracks::run_job(&cluster, &spec, idea_adm::Value::Missing)?;
            handle.join()?;
            shared.metrics.mark_finished();
            Ok(())
        }
        PipelineMode::Decoupled => {
            let result = drive_decoupled(&cluster, &shared);
            unregister_holders(&cluster, &shared);
            shared.metrics.mark_finished();
            result
        }
    }
}

fn drive_decoupled(cluster: &Arc<Cluster>, shared: &Arc<FeedShared>) -> Result<()> {
    register_holders(cluster, shared)?;

    // Long-running jobs.
    let intake =
        idea_hyracks::run_job(cluster, &build_intake_spec(shared), idea_adm::Value::Missing)?;
    let storage =
        idea_hyracks::run_job(cluster, &build_storage_spec(shared), idea_adm::Value::Missing)?;

    // The computing job: compiled once and predeployed (§5.1), or
    // recompiled per invocation when the ablation disables predeploy.
    let deployed = if shared.spec.predeploy {
        Some(cluster.deploy_job(build_computing_spec(shared)))
    } else {
        None
    };

    let run_result = (|| -> Result<()> {
        loop {
            let t0 = Instant::now();
            let handle = match deployed {
                Some(id) => cluster.invoke_deployed(id, idea_adm::Value::Missing)?,
                None => {
                    // Recompile: fresh spec, fresh plan cache.
                    let mut recompiled = FeedShared {
                        spec: shared.spec.clone(),
                        catalog: shared.catalog.clone(),
                        metrics: shared.metrics.clone(),
                        obs: shared.obs.clone(),
                        stop: shared.stop.clone(),
                        plan_cache: PlanCache::new(),
                        stream_ctxs: shared.stream_ctxs.clone(),
                        datatype: shared.datatype.clone(),
                    };
                    recompiled.plan_cache = PlanCache::new();
                    let spec = build_computing_spec(&Arc::new(recompiled));
                    idea_hyracks::run_job(cluster, &spec, idea_adm::Value::Missing)?
                }
            };
            handle.join()?;
            shared.metrics.record_batch(t0.elapsed());

            // Stop when every node's intake holder has delivered EOF and
            // holds nothing more.
            let drained = cluster.nodes().iter().all(|n| {
                n.holders()
                    .lookup(&shared.spec.intake_holder())
                    .map(|h| h.drained())
                    .unwrap_or(true)
            });
            if drained {
                break;
            }
        }
        Ok(())
    })();

    if let Some(id) = deployed {
        cluster.undeploy_job(id);
    }

    // On a computing-job failure nothing consumes the intake holders
    // any more; unblock the intake job (stop the adapters and drain the
    // queues) so shutdown cannot deadlock on a full holder.
    if run_result.is_err() {
        shared.stop.store(true, std::sync::atomic::Ordering::Release);
        for node in cluster.nodes() {
            if let Ok(h) = node.holders().lookup(&shared.spec.intake_holder()) {
                while !h.drained() {
                    if h.pull_batch(8_192).is_err() {
                        break;
                    }
                }
            }
        }
    }

    // Shut down: the intake job has finished producing; signal the
    // storage job and join everything.
    let intake_result = intake.join();
    for node in cluster.nodes() {
        if let Ok(h) = node.holders().lookup(&shared.spec.storage_holder()) {
            let _ = h.push_eof();
        }
    }
    let storage_result = storage.join();

    run_result?;
    intake_result?;
    storage_result?;
    Ok(())
}

//! The Active Feed Manager (paper §6.1): tracks active feeds, drives
//! their computing jobs, and manages feed shutdown.
//!
//! Since the fault-tolerance subsystem (`idea-ft`) the AFM also
//! *supervises* feeds: each feed run is a sequence of **attempts**. An
//! attempt owns fresh partition holders, a fresh pause gate and a fresh
//! abort flag; the checkpoint store, metrics, fault injector and
//! dead-letter sink persist across attempts. When an attempt fails and
//! restart budget remains, the supervisor restores killed nodes (a
//! crashed NC rejoining), backs off, and replays the adapters from the
//! last committed checkpoint — at-least-once delivery that the storage
//! job's primary-key upserts make effectively exactly-once.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use idea_adm::Datatype;
use idea_ft::{
    dead_letter_datatype, CheckpointStore, DeadLetterSink, FaultInjector, PauseGate,
    DEAD_LETTER_TYPE,
};
use idea_hyracks::{Cluster, HyracksError, JobHandle};
use idea_obs::{MetricsRegistry, MetricsScope};
use idea_query::{Catalog, ExecContext, PlanCache};
use parking_lot::Mutex;

use crate::error::IngestError;
use crate::metrics::{FeedMetrics, IngestionReport};
use crate::models::{FeedSpec, PipelineMode};
use crate::pipeline::{
    build_computing_spec, build_intake_spec, build_static_spec, build_storage_spec,
    register_holders, unregister_holders, FeedShared,
};
use crate::Result;

/// Handle to a running feed.
pub struct FeedHandle {
    name: String,
    stop: Arc<AtomicBool>,
    metrics: Arc<FeedMetrics>,
    driver: Mutex<Option<std::thread::JoinHandle<Result<()>>>>,
    result: Mutex<Option<Result<IngestionReport>>>,
}

impl FeedHandle {
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Live metrics (updated while the feed runs).
    pub fn metrics(&self) -> &Arc<FeedMetrics> {
        &self.metrics
    }

    /// Requests the feed to stop: adapters cease producing, the pipeline
    /// drains, EOF propagates (paper §6.1's stop protocol). A stopped
    /// feed is not restarted by the supervisor.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Waits for the feed to finish (all jobs drained and joined) and
    /// returns the ingestion report. Idempotent: the first call joins
    /// the driver; later calls return the same cached outcome.
    pub fn wait(&self) -> Result<IngestionReport> {
        let mut cached = self.result.lock();
        if let Some(r) = cached.as_ref() {
            return r.clone();
        }
        let outcome = match self.driver.lock().take() {
            Some(handle) => match handle.join() {
                Ok(Ok(())) => Ok(self.metrics.report()),
                Ok(Err(e)) => Err(e),
                Err(_) => Err(IngestError::Feed(format!("feed {} driver panicked", self.name))),
            },
            None => Err(IngestError::Feed(format!("feed {} has no driver", self.name))),
        };
        *cached = Some(outcome.clone());
        outcome
    }

    /// Convenience: stop, then wait.
    pub fn stop_and_wait(&self) -> Result<IngestionReport> {
        self.stop();
        self.wait()
    }
}

/// Per-feed state that survives supervisor restarts (one per feed run,
/// shared by every attempt).
struct FeedRuntime {
    spec: Arc<FeedSpec>,
    catalog: Arc<Catalog>,
    metrics: Arc<FeedMetrics>,
    obs: MetricsScope,
    /// User-requested stop (never set by the supervisor).
    user_stop: Arc<AtomicBool>,
    plan_cache: Arc<PlanCache>,
    stream_ctxs: Arc<Mutex<HashMap<usize, ExecContext>>>,
    datatype: Datatype,
    injector: Option<Arc<FaultInjector>>,
    dead_letter: Option<Arc<DeadLetterSink>>,
    ckpt: Arc<CheckpointStore>,
    /// Cumulative computing batches across attempts — the clock the
    /// fault plan's `KillNode { at_batch }` coordinates tick against.
    batches: AtomicU64,
}

impl FeedRuntime {
    /// Builds the shared state for one fresh attempt: new abort flag,
    /// new pause gate, live offsets rewound to the committed snapshot.
    fn fresh_shared(&self) -> Arc<FeedShared> {
        self.ckpt.rewind();
        Arc::new(FeedShared {
            spec: self.spec.clone(),
            catalog: self.catalog.clone(),
            metrics: self.metrics.clone(),
            obs: self.obs.clone(),
            stop: self.user_stop.clone(),
            abort: Arc::new(AtomicBool::new(false)),
            plan_cache: self.plan_cache.clone(),
            stream_ctxs: self.stream_ctxs.clone(),
            datatype: self.datatype.clone(),
            injector: self.injector.clone(),
            dead_letter: self.dead_letter.clone(),
            ckpt: self.ckpt.clone(),
            gate: Arc::new(PauseGate::new()),
            ckpt_base: self.ckpt.committed_snapshot(),
        })
    }
}

/// Manages the lifecycle of all data feeds on a cluster. Owns the
/// metrics registry every feed reports into (and attaches it to the
/// cluster, so Hyracks job/task instruments land there too).
pub struct ActiveFeedManager {
    cluster: Arc<Cluster>,
    catalog: Arc<Catalog>,
    registry: Arc<MetricsRegistry>,
    active: Mutex<HashMap<String, Arc<FeedHandle>>>,
}

impl ActiveFeedManager {
    pub fn new(cluster: Arc<Cluster>, catalog: Arc<Catalog>) -> Self {
        assert_eq!(
            cluster.node_count(),
            catalog.partitions(),
            "catalog partitions must match cluster size (one storage partition per node)"
        );
        let registry = MetricsRegistry::new();
        cluster.attach_metrics(registry.clone());
        // Engine-wide view of the background flush/merge pool, if the
        // catalog has one installed.
        if let Some(sched) = catalog.maintenance() {
            use idea_obs::names;
            type SchedProbe = fn(&idea_storage::MaintenanceScheduler) -> i64;
            for (name, f) in [
                (names::MAINT_QUEUE_DEPTH, (|s| s.queue_depth() as i64) as SchedProbe),
                (names::MAINT_SUBMITTED, |s: &idea_storage::MaintenanceScheduler| {
                    s.submitted() as i64
                }),
                (names::MAINT_COMPLETED, |s| s.completed() as i64),
                (names::MAINT_FLUSH_TASKS, |s| s.flush_tasks() as i64),
                (names::MAINT_MERGE_TASKS, |s| s.merge_tasks() as i64),
                (names::MAINT_QUEUE_WAIT_NANOS, |s| s.queue_wait_nanos() as i64),
            ] {
                let weak = Arc::downgrade(&sched);
                registry.probe(name, move || weak.upgrade().map_or(0, |s| f(&s)));
            }
        }
        ActiveFeedManager { cluster, catalog, registry, active: Mutex::new(HashMap::new()) }
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The registry all feeds on this manager report into. Snapshot it
    /// for a live view of every counter, gauge, and histogram.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Names of currently running feeds.
    pub fn active_feeds(&self) -> Vec<String> {
        self.active.lock().keys().cloned().collect()
    }

    /// Starts a feed and returns its handle.
    pub fn start(&self, spec: FeedSpec) -> Result<Arc<FeedHandle>> {
        // Fail fast on config errors.
        let spec = spec.build(self.cluster.node_count())?;
        let dataset = self.catalog.dataset(&spec.dataset)?;
        if let Some(f) = &spec.function {
            self.catalog.function(f)?;
        }
        let mut active = self.active.lock();
        if active.contains_key(&spec.name) {
            return Err(IngestError::Feed(format!("feed {} is already running", spec.name)));
        }

        // A feed restarted under the same name gets fresh instruments;
        // stale counters from the previous run must not leak into it.
        let scope_name = format!("feed/{}", spec.name);
        self.registry.remove_scope(&scope_name);
        let obs = self.registry.scope(scope_name);
        let metrics = Arc::new(FeedMetrics::in_scope(&obs));

        // Storage stats for the target dataset, sampled at snapshot
        // time. Weak refs: the registry must not keep a dropped dataset
        // alive.
        for (metric, f) in [
            ("flushes", idea_storage::Dataset::flush_count as fn(&idea_storage::Dataset) -> u64),
            ("merges", idea_storage::Dataset::merge_count),
            ("components", |d: &idea_storage::Dataset| d.component_count() as u64),
            ("live", |d: &idea_storage::Dataset| d.len() as u64),
            ("bytes_ingested", idea_storage::Dataset::bytes_ingested),
            ("bytes_written", idea_storage::Dataset::bytes_written),
            ("put_stall_nanos", idea_storage::Dataset::stall_nanos),
        ] {
            let weak = Arc::downgrade(&dataset);
            self.registry.probe(format!("storage/{}/{metric}", spec.dataset), move || {
                weak.upgrade()
                    .map_or(0, |ds| ds.partitions().iter().map(|p| f(p)).sum::<u64>() as i64)
            });
        }
        if dataset.partitions()[0].is_durable() {
            use idea_obs::names;
            type DurableProbe = fn(&idea_storage::Dataset) -> u64;
            for (metric, f) in [
                (names::WAL_APPENDS, (|d| d.wal_stats().map_or(0, |w| w.appends)) as DurableProbe),
                (names::WAL_COMMITS, |d| d.wal_stats().map_or(0, |w| w.commits)),
                (names::WAL_FLUSH_ROUNDS, |d| d.wal_stats().map_or(0, |w| w.flush_rounds)),
                (names::WAL_FSYNCS, |d| d.wal_stats().map_or(0, |w| w.fsyncs)),
                (names::WAL_BYTES, |d| d.wal_stats().map_or(0, |w| w.bytes_appended)),
                (names::WAL_SEGMENTS_RETIRED, |d| d.wal_stats().map_or(0, |w| w.segments_retired)),
                (names::CACHE_HITS, |d| d.cache_stats().map_or(0, |c| c.hits)),
                (names::CACHE_MISSES, |d| d.cache_stats().map_or(0, |c| c.misses)),
                (names::CACHE_READ_ERRORS, |d| d.cache_stats().map_or(0, |c| c.read_errors)),
                (names::RECOVERY_COMPONENTS, |d| {
                    d.recovery_stats().map_or(0, |r| r.components_loaded)
                }),
                (names::RECOVERY_REPLAYED, |d| {
                    d.recovery_stats().map_or(0, |r| r.replayed_records)
                }),
                (names::RECOVERY_TRUNCATED_BYTES, |d| {
                    d.recovery_stats().map_or(0, |r| r.truncated_bytes)
                }),
                (names::RECOVERY_MILLIS, |d| d.recovery_stats().map_or(0, |r| r.millis)),
                (names::STORAGE_IO_ERRORS, idea_storage::Dataset::io_error_count),
            ] {
                let weak = Arc::downgrade(&dataset);
                self.registry.probe(format!("storage/{}/{metric}", spec.dataset), move || {
                    weak.upgrade()
                        .map_or(0, |ds| ds.partitions().iter().map(|p| f(p)).sum::<u64>() as i64)
                });
            }
        }

        // Fault injection: fired-state lives here, so a fault fires once
        // per feed run no matter how many attempts replay its offset.
        let injector = spec.fault_plan.as_ref().map(|plan| {
            let inj = FaultInjector::new(plan.as_ref().clone(), self.cluster.node_count());
            inj.attach_obs(&obs.scope("faults/injected"));
            inj
        });
        // Slow-storage faults also hit background maintenance: flushes
        // and merges for a partition on a slowed node are delayed just
        // like the writer path. Keyed by feed name; removed with the
        // feed.
        if let (Some(inj), Some(sched)) = (&injector, self.catalog.maintenance()) {
            let inj = inj.clone();
            sched.set_fault_hook(
                spec.name.clone(),
                Arc::new(move |_kind, node| {
                    if let Some(delay) = node.and_then(|n| inj.storage_delay(n)) {
                        std::thread::sleep(delay);
                    }
                }),
            );
        }

        // Dead-letter capture: auto-create the dataset (and its type) so
        // poison records are queryable through ordinary SQL++.
        let dead_letter = if spec.supervision.needs_dead_letter() {
            let dlq = spec
                .supervision
                .dead_letter_dataset
                .clone()
                .unwrap_or_else(|| format!("{}_dead_letters", spec.name));
            if self.catalog.get_type(DEAD_LETTER_TYPE).is_err() {
                self.catalog.create_type(dead_letter_datatype())?;
            }
            let ds = match self.catalog.dataset(&dlq) {
                Ok(ds) => ds,
                Err(_) => {
                    self.catalog.create_dataset(&dlq, DEAD_LETTER_TYPE, "dl_id")?;
                    self.catalog.dataset(&dlq)?
                }
            };
            Some(DeadLetterSink::new(spec.name.clone(), ds, metrics.dead_letters.clone()))
        } else {
            None
        };

        let datatype = dataset.partitions()[0].datatype().clone();
        // With a durable-storage root, checkpoints survive restarts: a
        // re-started feed resumes from the last committed offsets
        // instead of replaying the adapter from zero.
        let ckpt = Arc::new(match self.catalog.storage_root() {
            Some(root) => CheckpointStore::persistent(
                spec.intake_nodes.len(),
                root.join("checkpoints").join(format!("{}.ckpt", spec.name)),
            ),
            None => CheckpointStore::new(spec.intake_nodes.len()),
        });
        let rt = Arc::new(FeedRuntime {
            spec: Arc::new(spec),
            catalog: self.catalog.clone(),
            metrics,
            obs,
            user_stop: Arc::new(AtomicBool::new(false)),
            plan_cache: PlanCache::new(),
            stream_ctxs: Arc::new(Mutex::new(HashMap::new())),
            datatype,
            injector,
            dead_letter,
            ckpt,
            batches: AtomicU64::new(0),
        });

        let handle = Arc::new(FeedHandle {
            name: rt.spec.name.clone(),
            stop: rt.user_stop.clone(),
            metrics: rt.metrics.clone(),
            driver: Mutex::new(None),
            result: Mutex::new(None),
        });

        let cluster = self.cluster.clone();
        let rt2 = rt.clone();
        let driver = std::thread::Builder::new()
            .name(format!("afm::{}", rt.spec.name))
            .spawn(move || drive_feed(cluster, rt2))
            .map_err(|e| IngestError::Feed(format!("cannot spawn feed driver: {e}")))?;
        *handle.driver.lock() = Some(driver);
        active.insert(rt.spec.name.clone(), handle.clone());
        Ok(handle)
    }

    /// Requests a named feed to stop (returns its handle for waiting).
    pub fn stop(&self, name: &str) -> Result<Arc<FeedHandle>> {
        let handle = self
            .active
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| IngestError::Feed(format!("no running feed named {name}")))?;
        handle.stop();
        Ok(handle)
    }

    /// Forgets a finished feed (called by `wait_feed`).
    pub fn remove(&self, name: &str) {
        self.active.lock().remove(name);
        if let Some(sched) = self.catalog.maintenance() {
            sched.clear_fault_hook(name);
        }
    }

    /// Stops a feed, waits for it, and removes it.
    pub fn stop_and_wait(&self, name: &str) -> Result<IngestionReport> {
        let handle = self.stop(name)?;
        let report = handle.wait();
        self.remove(name);
        report
    }
}

/// The per-feed driver: runs attempts under supervision until one
/// succeeds or the restart budget is spent.
fn drive_feed(cluster: Arc<Cluster>, rt: Arc<FeedRuntime>) -> Result<()> {
    rt.metrics.mark_started();
    let result = match rt.spec.mode {
        PipelineMode::Static => {
            // The static (old-framework) pipeline predates supervision:
            // one shot, no checkpoints, no restarts.
            let shared = rt.fresh_shared();
            idea_hyracks::run_job(&cluster, &build_static_spec(&shared), idea_adm::Value::Missing)
                .map_err(IngestError::from)
                .and_then(|h| h.join().map_err(IngestError::from))
        }
        PipelineMode::Decoupled => supervise_decoupled(&cluster, &rt),
    };
    rt.metrics.mark_finished();
    result
}

/// The supervision loop: drives attempts, restoring killed nodes and
/// backing off between them.
fn supervise_decoupled(cluster: &Arc<Cluster>, rt: &Arc<FeedRuntime>) -> Result<()> {
    let restart = rt.spec.supervision.restart.clone();
    let mut attempt: u32 = 0;
    loop {
        let shared = rt.fresh_shared();
        let result = drive_attempt(cluster, rt, &shared);
        unregister_holders(cluster, &shared);
        match result {
            Ok(()) => return Ok(()),
            Err(e) => {
                if rt.user_stop.load(Ordering::Acquire) || attempt >= restart.max_restarts {
                    return Err(e);
                }
                attempt += 1;
                rt.metrics.restarts.inc();
                if rt.spec.supervision.restore_nodes_on_restart {
                    for n in cluster.dead_nodes() {
                        cluster.restore_node(n);
                    }
                }
                std::thread::sleep(restart.backoff.delay(attempt - 1));
            }
        }
    }
}

/// One attempt: fresh holders, long-running intake + storage jobs, the
/// batch-driving loop, then teardown.
fn drive_attempt(cluster: &Arc<Cluster>, rt: &FeedRuntime, shared: &Arc<FeedShared>) -> Result<()> {
    register_holders(cluster, shared)?;
    // All quiescence deltas are attempt-relative; holders start at zero
    // (fresh registration), the acked counter is rebased here.
    let acked_base = shared.metrics.storage_acked.get();

    let intake =
        idea_hyracks::run_job(cluster, &build_intake_spec(shared), idea_adm::Value::Missing)?;
    let storage = match idea_hyracks::run_job(
        cluster,
        &build_storage_spec(shared, cluster.node_count()),
        idea_adm::Value::Missing,
    ) {
        Ok(h) => h,
        Err(e) => {
            // The intake job is already running; wake it up before
            // bailing out, or its adapters block on full holders forever.
            fail_feed_holders(cluster, shared);
            let _ = intake.join();
            return Err(e.into());
        }
    };

    // The computing job: compiled once and predeployed (§5.1), or
    // recompiled per invocation when the ablation disables predeploy.
    let deployed = if shared.spec.predeploy {
        Some(cluster.deploy_job(build_computing_spec(shared)))
    } else {
        None
    };

    let run_result = drive_batches(cluster, rt, shared, acked_base, &intake, &storage, deployed);

    // Deferred teardown: the batch loop has joined every invocation, so
    // the pool is idle — sending shutdown and letting a reaper thread
    // join the workers keeps ~one serial join per (stage, partition)
    // out of the feed's timed window.
    if let Some(id) = deployed {
        cluster.undeploy_job_deferred(id);
    }

    // On a failure nothing consumes the intake holders any more; poison
    // every feed holder so blocked producers and consumers all wake up
    // (a plain drain can itself block if the intake job died before
    // pushing EOF).
    if run_result.is_err() {
        fail_feed_holders(cluster, shared);
    }

    // Shut down: the intake job has finished producing; signal the
    // storage job and join everything.
    let intake_result = intake.join();
    for node in cluster.nodes() {
        if let Ok(h) = node.holders().lookup(&shared.spec.storage_holder()) {
            let _ = h.push_eof();
        }
    }
    let storage_result = storage.join();

    finish_attempt(run_result, intake_result, storage_result)
}

/// The batch loop: per boundary — checkpoint if due, fire scheduled
/// node kills, invoke the computing job — until the intake drains.
fn drive_batches(
    cluster: &Arc<Cluster>,
    rt: &FeedRuntime,
    shared: &Arc<FeedShared>,
    acked_base: u64,
    intake: &JobHandle,
    storage: &JobHandle,
    deployed: Option<idea_hyracks::DeployedJobId>,
) -> Result<()> {
    // One allocation for the (empty) invocation parameter, shared by
    // every batch and every task via `Arc` instead of a per-task clone.
    let missing: Arc<idea_adm::Value> = Arc::new(idea_adm::Value::Missing);
    let mut invoke = || -> Result<JobHandle> {
        match deployed {
            Some(id) => Ok(cluster.invoke_deployed(id, missing.clone())?),
            None => {
                // Recompile: same shared state, fresh plan cache.
                let recompiled = Arc::new(FeedShared {
                    spec: shared.spec.clone(),
                    catalog: shared.catalog.clone(),
                    metrics: shared.metrics.clone(),
                    obs: shared.obs.clone(),
                    stop: shared.stop.clone(),
                    abort: shared.abort.clone(),
                    plan_cache: PlanCache::new(),
                    stream_ctxs: shared.stream_ctxs.clone(),
                    datatype: shared.datatype.clone(),
                    injector: shared.injector.clone(),
                    dead_letter: shared.dead_letter.clone(),
                    ckpt: shared.ckpt.clone(),
                    gate: shared.gate.clone(),
                    ckpt_base: shared.ckpt_base.clone(),
                });
                let spec = build_computing_spec(&recompiled);
                Ok(idea_hyracks::run_job(cluster, &spec, missing.clone())?)
            }
        }
    };
    loop {
        let batches = rt.batches.load(Ordering::Relaxed);
        if let Some(interval) = shared.spec.supervision.checkpoint_interval {
            if batches > 0 && batches.is_multiple_of(interval) {
                // Checkpoint *before* any scheduled kill at the same
                // boundary, so the committed offsets cover everything
                // already stored.
                try_checkpoint(cluster, shared, acked_base, intake, storage, &mut invoke)?;
            }
        }
        if let Some(inj) = &shared.injector {
            for n in inj.node_kills_due(batches) {
                cluster.kill_node(n);
            }
        }
        let t0 = Instant::now();
        let handle = invoke()?;
        join_watched(cluster, shared, intake, storage, handle)?;
        shared.metrics.record_batch(t0.elapsed());
        rt.batches.fetch_add(1, Ordering::Relaxed);

        // Stop when every node's intake holder has delivered EOF and
        // holds nothing more.
        let drained = cluster.nodes().iter().all(|n| {
            n.holders()
                .lookup(&shared.spec.intake_holder())
                .map(|h| h.drained())
                .unwrap_or(true)
        });
        if drained {
            break;
        }
    }
    Ok(())
}

/// Joins a computing invocation while watching the long-running jobs.
/// If the storage job dies mid-feed — or the intake job exits without
/// delivering EOF to some live holder — the invocation could block on a
/// holder forever; poisoning the feed's holders turns the hang into an
/// error the supervisor can handle.
fn join_watched(
    cluster: &Cluster,
    shared: &FeedShared,
    intake: &JobHandle,
    storage: &JobHandle,
    handle: JobHandle,
) -> Result<()> {
    loop {
        // Event-driven wait: the handle's latch wakes us the moment the
        // job completes; the timeout is only the watchdog cadence for
        // noticing a dead intake/storage job.
        if handle.wait_timeout(Duration::from_micros(200)) {
            return handle.join().map_err(IngestError::from);
        }
        let storage_died = storage.is_finished();
        let intake_died = intake.is_finished()
            && cluster.nodes().iter().any(|n| {
                n.is_alive()
                    && n.holders()
                        .lookup(&shared.spec.intake_holder())
                        .map(|h| !h.eof_pushed() && !h.poisoned())
                        .unwrap_or(false)
            });
        if storage_died || intake_died {
            fail_feed_holders(cluster, shared);
        }
    }
}

/// Attempts one checkpoint: pause the adapters, drain the pipeline to
/// quiescence, commit, resume. Returns `Ok(false)` when quiescence is
/// not reachable (dead holders, storage gone, or timeout) — the feed
/// keeps running and simply skips this boundary.
fn try_checkpoint(
    cluster: &Arc<Cluster>,
    shared: &Arc<FeedShared>,
    acked_base: u64,
    intake: &JobHandle,
    storage: &JobHandle,
    invoke: &mut dyn FnMut() -> Result<JobHandle>,
) -> Result<bool> {
    shared.gate.pause();
    let result = checkpoint_quiesced(cluster, shared, acked_base, intake, storage, invoke);
    shared.gate.resume();
    result
}

fn checkpoint_quiesced(
    cluster: &Arc<Cluster>,
    shared: &Arc<FeedShared>,
    acked_base: u64,
    intake: &JobHandle,
    storage: &JobHandle,
    invoke: &mut dyn FnMut() -> Result<JobHandle>,
) -> Result<bool> {
    const TIMEOUT: Duration = Duration::from_secs(2);
    let deadline = Instant::now() + TIMEOUT;
    // Drain until every active adapter has flushed and acked the pause
    // epoch AND the counters balance across every stage boundary (all
    // deltas are attempt-relative). Draining cannot wait for the acks:
    // an adapter may be blocked pushing into a full intake holder, and
    // only a computing invocation frees the space that lets it reach
    // its pause check.
    let base_emitted: u64 = shared.ckpt_base.iter().sum();
    loop {
        let (irecv, itaken, srecv, staken, poisoned) = feed_holder_counts(cluster, shared);
        if poisoned || storage.is_finished() {
            return Ok(false);
        }
        if shared.gate.quiesced() {
            let emitted = shared.ckpt.emitted_total() - base_emitted;
            let acked = shared.metrics.storage_acked.get() - acked_base;
            if emitted == irecv && irecv == itaken && srecv == staken && staken == acked {
                // Pause background maintenance across the commit so the
                // committed offsets pair with a stable component stack.
                // Only at the commit point: the pipeline is quiesced, so
                // no put can be stalled waiting on a paused flush.
                let maint = shared.catalog.maintenance();
                if let Some(m) = &maint {
                    m.pause();
                }
                shared.ckpt.commit();
                if let Some(m) = &maint {
                    m.resume();
                }
                shared.metrics.checkpoints.inc();
                return Ok(true);
            }
        }
        if Instant::now() > deadline {
            return Ok(false);
        }
        if itaken < irecv {
            // Records parked in the intake holders: drain them with one
            // more computing invocation (the paused gate makes its
            // collector pull non-blocking). Not counted as a batch.
            let handle = invoke()?;
            join_watched(cluster, shared, intake, storage, handle)?;
        } else {
            // In flight between adapters and holders, or between the
            // storage holders and the writers — just wait.
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Sums the attempt-relative received/taken counters over the feed's
/// holders on every node; also reports whether any holder is poisoned.
fn feed_holder_counts(cluster: &Cluster, shared: &FeedShared) -> (u64, u64, u64, u64, bool) {
    let (mut irecv, mut itaken, mut srecv, mut staken) = (0u64, 0u64, 0u64, 0u64);
    let mut poisoned = false;
    for node in cluster.nodes() {
        if let Ok(h) = node.holders().lookup(&shared.spec.intake_holder()) {
            irecv += h.received();
            itaken += h.taken();
            poisoned |= h.poisoned();
        }
        if let Ok(h) = node.holders().lookup(&shared.spec.storage_holder()) {
            srecv += h.received();
            staken += h.taken();
            poisoned |= h.poisoned();
        }
    }
    (irecv, itaken, srecv, staken, poisoned)
}

/// Aborts the current attempt: flags it and poisons every feed holder,
/// waking any task blocked pushing to or pulling from one.
fn fail_feed_holders(cluster: &Cluster, shared: &FeedShared) {
    shared.abort.store(true, Ordering::Release);
    for node in cluster.nodes() {
        if let Ok(h) = node.holders().lookup(&shared.spec.intake_holder()) {
            h.fail();
        }
        if let Ok(h) = node.holders().lookup(&shared.spec.storage_holder()) {
            h.fail();
        }
    }
}

/// Combines the three job outcomes into the attempt result, preferring
/// the most informative error: operator/config failures first, then
/// node-down, then secondary disconnects (a stage hanging up because a
/// neighbour died).
fn finish_attempt(
    run: Result<()>,
    intake: idea_hyracks::Result<()>,
    storage: idea_hyracks::Result<()>,
) -> Result<()> {
    let mut errors: Vec<IngestError> = Vec::new();
    if let Err(e) = intake {
        errors.push(e.into());
    }
    if let Err(e) = run {
        errors.push(e);
    }
    if let Err(e) = storage {
        errors.push(e.into());
    }
    if errors.is_empty() {
        return Ok(());
    }
    let rank = |e: &IngestError| match e {
        IngestError::Runtime(HyracksError::Disconnected(_)) => 2u8,
        IngestError::Runtime(HyracksError::NodeDown(_)) => 1,
        _ => 0,
    };
    errors.sort_by_key(rank);
    Err(errors.remove(0))
}

//! Feed metrics: throughput and refresh periods (the quantities
//! Figures 24–31 report).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Live counters updated by pipeline operators.
#[derive(Debug, Default)]
pub struct FeedMetrics {
    pub records_ingested: AtomicU64,
    pub parse_errors: AtomicU64,
    /// Records dropped because the attached UDF failed on them (the feed
    /// keeps running — a poison record must not kill the pipeline).
    pub enrich_errors: AtomicU64,
    pub records_enriched: AtomicU64,
    pub records_stored: AtomicU64,
    pub computing_jobs: AtomicU64,
    batch_nanos: AtomicU64,
    timing: Mutex<Timing>,
}

#[derive(Debug, Default)]
struct Timing {
    started: Option<Instant>,
    finished: Option<Instant>,
    batch_durations: Vec<Duration>,
}

impl FeedMetrics {
    pub fn mark_started(&self) {
        self.timing.lock().started.get_or_insert_with(Instant::now);
    }

    pub fn mark_finished(&self) {
        self.timing.lock().finished = Some(Instant::now());
    }

    pub fn record_batch(&self, took: Duration) {
        self.computing_jobs.fetch_add(1, Ordering::Relaxed);
        self.batch_nanos.fetch_add(took.as_nanos() as u64, Ordering::Relaxed);
        self.timing.lock().batch_durations.push(took);
    }

    /// Builds the final report.
    pub fn report(&self) -> IngestionReport {
        let timing = self.timing.lock();
        let elapsed = match (timing.started, timing.finished) {
            (Some(s), Some(f)) => f - s,
            (Some(s), None) => s.elapsed(),
            _ => Duration::ZERO,
        };
        let stored = self.records_stored.load(Ordering::Relaxed);
        let jobs = self.computing_jobs.load(Ordering::Relaxed);
        IngestionReport {
            records_ingested: self.records_ingested.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            enrich_errors: self.enrich_errors.load(Ordering::Relaxed),
            records_enriched: self.records_enriched.load(Ordering::Relaxed),
            records_stored: stored,
            computing_jobs: jobs,
            elapsed,
            throughput: if elapsed.is_zero() { 0.0 } else { stored as f64 / elapsed.as_secs_f64() },
            avg_refresh_period: if jobs == 0 {
                Duration::ZERO
            } else {
                Duration::from_nanos(self.batch_nanos.load(Ordering::Relaxed) / jobs)
            },
            batch_durations: timing.batch_durations.clone(),
        }
    }
}

/// Final summary of one feed run.
#[derive(Debug, Clone)]
pub struct IngestionReport {
    /// Raw records pulled in by adapters.
    pub records_ingested: u64,
    /// Records dropped as malformed JSON (or failing type validation).
    pub parse_errors: u64,
    /// Records dropped because the UDF failed on them.
    pub enrich_errors: u64,
    /// Records that passed UDF evaluation.
    pub records_enriched: u64,
    /// Records persisted by the storage job.
    pub records_stored: u64,
    /// Computing-job invocations (0 for static pipelines).
    pub computing_jobs: u64,
    pub elapsed: Duration,
    /// Stored records per second.
    pub throughput: f64,
    /// Mean computing-job execution time — the paper's "refresh period"
    /// (Figure 26).
    pub avg_refresh_period: Duration,
    /// Per-batch execution times.
    pub batch_durations: Vec<Duration>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates() {
        let m = FeedMetrics::default();
        m.mark_started();
        m.records_stored.store(100, Ordering::Relaxed);
        m.record_batch(Duration::from_millis(10));
        m.record_batch(Duration::from_millis(30));
        m.mark_finished();
        let r = m.report();
        assert_eq!(r.records_stored, 100);
        assert_eq!(r.computing_jobs, 2);
        assert_eq!(r.avg_refresh_period, Duration::from_millis(20));
        assert!(r.throughput > 0.0);
        assert_eq!(r.batch_durations.len(), 2);
    }
}

//! Feed metrics: throughput and refresh periods (the quantities
//! Figures 24–31 report).
//!
//! Since the observability rework these are *views over the metrics
//! registry*: every counter a `FeedMetrics` exposes is a registry
//! instrument under `feed/<name>/...`, so the same numbers that drive
//! [`IngestionReport`] appear in registry snapshots (and, via
//! `Snapshot::to_adm`, in SQL++). Pipeline operators keep their cheap
//! one-atomic-op recording path: the handles are resolved once at feed
//! start.

use std::sync::Arc;
use std::time::{Duration, Instant};

use idea_obs::{Counter, Histogram, MetricsRegistry, MetricsScope};
use parking_lot::Mutex;

/// Live per-feed instruments updated by pipeline operators. All handles
/// point into a [`MetricsRegistry`]; see [`FeedMetrics::in_scope`] for
/// the naming scheme.
#[derive(Debug)]
pub struct FeedMetrics {
    /// Raw records pulled in by adapters (`intake/records`).
    pub records_ingested: Arc<Counter>,
    /// Malformed or type-invalid records dropped (`parse/errors`).
    pub parse_errors: Arc<Counter>,
    /// Records dropped because the attached UDF failed on them (the feed
    /// keeps running — a poison record must not kill the pipeline)
    /// (`enrich/errors`).
    pub enrich_errors: Arc<Counter>,
    /// Records that passed UDF evaluation (`enrich/records`).
    pub records_enriched: Arc<Counter>,
    /// Records persisted by the storage job (`store/records`).
    pub records_stored: Arc<Counter>,
    /// Computing-job invocations (`computing/jobs`).
    pub computing_jobs: Arc<Counter>,
    /// Records acknowledged as durably upserted (`store/acked`); drives
    /// the checkpoint quiescence check.
    pub storage_acked: Arc<Counter>,
    /// Records captured in the dead-letter dataset (`faults/dead_letters`).
    pub dead_letters: Arc<Counter>,
    /// Per-record retry attempts across all stages (`faults/retries`).
    pub retries: Arc<Counter>,
    /// Whole-feed restarts by the supervisor (`faults/restarts`).
    pub restarts: Arc<Counter>,
    /// Committed ingestion checkpoints (`faults/checkpoints`).
    pub checkpoints: Arc<Counter>,
    /// Per-batch computing-job latency (`batch_latency`).
    batch_latency: Arc<Histogram>,
    timing: Mutex<Timing>,
}

#[derive(Debug, Default)]
struct Timing {
    started: Option<Instant>,
    finished: Option<Instant>,
    batch_durations: Vec<Duration>,
}

impl FeedMetrics {
    /// Registers this feed's instruments under `scope` (normally
    /// `feed/<name>`) and returns handles bound to them.
    pub fn in_scope(scope: &MetricsScope) -> FeedMetrics {
        FeedMetrics {
            records_ingested: scope.counter("intake/records"),
            parse_errors: scope.counter("parse/errors"),
            enrich_errors: scope.counter("enrich/errors"),
            records_enriched: scope.counter("enrich/records"),
            records_stored: scope.counter("store/records"),
            computing_jobs: scope.counter("computing/jobs"),
            storage_acked: scope.counter("store/acked"),
            dead_letters: scope.counter("faults/dead_letters"),
            retries: scope.counter("faults/retries"),
            restarts: scope.counter("faults/restarts"),
            checkpoints: scope.counter("faults/checkpoints"),
            batch_latency: scope.histogram("batch_latency"),
            timing: Mutex::new(Timing::default()),
        }
    }

    /// Standalone metrics backed by a private throwaway registry — for
    /// unit tests and detached use.
    pub fn detached() -> FeedMetrics {
        FeedMetrics::in_scope(&MetricsRegistry::new().scope("feed/detached"))
    }

    pub fn mark_started(&self) {
        self.timing.lock().started.get_or_insert_with(Instant::now);
    }

    pub fn mark_finished(&self) {
        self.timing.lock().finished = Some(Instant::now());
    }

    pub fn record_batch(&self, took: Duration) {
        self.computing_jobs.inc();
        self.batch_latency.record(took);
        self.timing.lock().batch_durations.push(took);
    }

    /// Builds the final report.
    pub fn report(&self) -> IngestionReport {
        let timing = self.timing.lock();
        let elapsed = match (timing.started, timing.finished) {
            (Some(s), Some(f)) => f - s,
            (Some(s), None) => s.elapsed(),
            _ => Duration::ZERO,
        };
        let stored = self.records_stored.get();
        let jobs = self.computing_jobs.get();
        let batch_nanos: u64 = timing.batch_durations.iter().map(|d| d.as_nanos() as u64).sum();
        IngestionReport {
            records_ingested: self.records_ingested.get(),
            parse_errors: self.parse_errors.get(),
            enrich_errors: self.enrich_errors.get(),
            records_enriched: self.records_enriched.get(),
            records_stored: stored,
            computing_jobs: jobs,
            dead_letters: self.dead_letters.get(),
            retries: self.retries.get(),
            restarts: self.restarts.get(),
            checkpoints: self.checkpoints.get(),
            elapsed,
            throughput: if elapsed.is_zero() { 0.0 } else { stored as f64 / elapsed.as_secs_f64() },
            avg_refresh_period: Duration::from_nanos(batch_nanos.checked_div(jobs).unwrap_or(0)),
            batch_durations: timing.batch_durations.clone(),
        }
    }
}

impl Default for FeedMetrics {
    fn default() -> Self {
        FeedMetrics::detached()
    }
}

/// Final summary of one feed run.
#[derive(Debug, Clone)]
pub struct IngestionReport {
    /// Raw records pulled in by adapters.
    pub records_ingested: u64,
    /// Records dropped as malformed JSON (or failing type validation).
    pub parse_errors: u64,
    /// Records dropped because the UDF failed on them.
    pub enrich_errors: u64,
    /// Records that passed UDF evaluation.
    pub records_enriched: u64,
    /// Records persisted by the storage job.
    pub records_stored: u64,
    /// Computing-job invocations (0 for static pipelines).
    pub computing_jobs: u64,
    /// Records captured in the dead-letter dataset.
    pub dead_letters: u64,
    /// Per-record retry attempts across all stages.
    pub retries: u64,
    /// Whole-feed restarts performed by the supervisor.
    pub restarts: u64,
    /// Ingestion checkpoints committed.
    pub checkpoints: u64,
    pub elapsed: Duration,
    /// Stored records per second.
    pub throughput: f64,
    /// Mean computing-job execution time — the paper's "refresh period"
    /// (Figure 26).
    pub avg_refresh_period: Duration,
    /// Per-batch execution times.
    pub batch_durations: Vec<Duration>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates() {
        let m = FeedMetrics::default();
        m.mark_started();
        m.records_stored.add(100);
        m.record_batch(Duration::from_millis(10));
        m.record_batch(Duration::from_millis(30));
        m.mark_finished();
        let r = m.report();
        assert_eq!(r.records_stored, 100);
        assert_eq!(r.computing_jobs, 2);
        assert_eq!(r.avg_refresh_period, Duration::from_millis(20));
        assert!(r.throughput > 0.0);
        assert_eq!(r.batch_durations.len(), 2);
    }

    #[test]
    fn counters_surface_in_registry_snapshot() {
        let registry = MetricsRegistry::new();
        let m = FeedMetrics::in_scope(&registry.scope("feed/t"));
        m.records_ingested.add(7);
        m.record_batch(Duration::from_millis(5));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("feed/t/intake/records"), Some(7));
        assert_eq!(snap.histogram("feed/t/batch_latency").unwrap().count, 1);
    }
}

//! Feed adapters: "an adapter, which obtains/receives data from an
//! external data source as raw bytes" (paper §2.3).
//!
//! An [`Adapter`] yields raw records (JSON text lines); an
//! [`AdapterFactory`] instantiates one adapter per intake node. Built-in
//! adapters:
//!
//! * [`VecAdapter`] — replays a pre-generated record list;
//! * [`GeneratorAdapter`] — produces records from a closure (the
//!   benchmark workloads use this with the tweet generator);
//! * [`RateLimitedAdapter`] — wraps another adapter to cap records/sec
//!   (the reference-data update clients of §7.3 use this);
//! * [`SocketAdapter`] — a real TCP line-oriented socket server, the
//!   paper's `socket_adapter` (Figure 4).

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of raw records for one intake partition.
pub trait Adapter: Send {
    /// The next raw record, or `None` when the source is exhausted (or
    /// the feed was stopped).
    fn next(&mut self) -> Option<String>;
}

/// Instantiates the adapter for intake partition `partition` of
/// `partitions`. Fallible: construction errors (e.g. a socket adapter
/// that cannot bind its address) surface through the feed's
/// [`FeedHandle::wait`](crate::afm::FeedHandle::wait) instead of
/// panicking the intake task.
pub type AdapterFactory =
    Arc<dyn Fn(usize, usize) -> crate::Result<Box<dyn Adapter>> + Send + Sync>;

/// Replays a fixed list of records.
pub struct VecAdapter {
    records: std::vec::IntoIter<String>,
}

impl VecAdapter {
    pub fn new(records: Vec<String>) -> Self {
        VecAdapter { records: records.into_iter() }
    }

    /// A factory that splits `records` round-robin across intake
    /// partitions.
    pub fn factory(records: Vec<String>) -> AdapterFactory {
        let records = Arc::new(records);
        Arc::new(move |partition, partitions| {
            let mine: Vec<String> = records
                .iter()
                .enumerate()
                .filter(|(i, _)| i % partitions == partition)
                .map(|(_, r)| r.clone())
                .collect();
            Ok(Box::new(VecAdapter::new(mine)) as Box<dyn Adapter>)
        })
    }
}

impl Adapter for VecAdapter {
    fn next(&mut self) -> Option<String> {
        self.records.next()
    }
}

/// Produces up to `count` records from a generator closure.
pub struct GeneratorAdapter<F> {
    gen: F,
    produced: u64,
    count: u64,
}

impl<F: FnMut(u64) -> String + Send> GeneratorAdapter<F> {
    pub fn new(count: u64, gen: F) -> Self {
        GeneratorAdapter { gen, produced: 0, count }
    }
}

impl<F: FnMut(u64) -> String + Send> Adapter for GeneratorAdapter<F> {
    fn next(&mut self) -> Option<String> {
        if self.produced >= self.count {
            return None;
        }
        let r = (self.gen)(self.produced);
        self.produced += 1;
        Some(r)
    }
}

/// Caps an adapter at `rate` records per second (token bucket with a
/// 10 ms sleep granularity).
pub struct RateLimitedAdapter {
    inner: Box<dyn Adapter>,
    rate: f64,
    started: Option<Instant>,
    emitted: u64,
    stop: Arc<AtomicBool>,
}

impl RateLimitedAdapter {
    pub fn new(inner: Box<dyn Adapter>, rate: f64) -> Self {
        assert!(rate > 0.0);
        RateLimitedAdapter {
            inner,
            rate,
            started: None,
            emitted: 0,
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A flag that makes `next` return `None` promptly (instead of
    /// sleeping out the schedule) when set.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }
}

impl Adapter for RateLimitedAdapter {
    fn next(&mut self) -> Option<String> {
        let started = *self.started.get_or_insert_with(Instant::now);
        let due = started + Duration::from_secs_f64(self.emitted as f64 / self.rate);
        while Instant::now() < due {
            if self.stop.load(Ordering::Relaxed) {
                return None;
            }
            std::thread::sleep(Duration::from_millis(10).min(due - Instant::now()));
        }
        self.emitted += 1;
        self.inner.next()
    }
}

/// A line-oriented TCP socket source: binds `addr`, accepts one
/// connection, and yields one record per line until the peer closes.
pub struct SocketAdapter {
    listener: TcpListener,
    reader: Option<BufReader<std::net::TcpStream>>,
    line: String,
}

impl SocketAdapter {
    /// Binds the listening socket (fails fast on bad addresses, as the
    /// feed DDL should).
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(SocketAdapter { listener, reader: None, line: String::new() })
    }

    /// The locally bound address (useful when binding port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }
}

impl Adapter for SocketAdapter {
    fn next(&mut self) -> Option<String> {
        if self.reader.is_none() {
            let (stream, _) = self.listener.accept().ok()?;
            self.reader = Some(BufReader::new(stream));
        }
        let reader = self.reader.as_mut().unwrap();
        loop {
            self.line.clear();
            match reader.read_line(&mut self.line) {
                Ok(0) | Err(_) => return None,
                Ok(_) => {
                    let trimmed = self.line.trim();
                    if !trimmed.is_empty() {
                        return Some(trimmed.to_owned());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_adapter_replays() {
        let mut a = VecAdapter::new(vec!["a".into(), "b".into()]);
        assert_eq!(a.next().as_deref(), Some("a"));
        assert_eq!(a.next().as_deref(), Some("b"));
        assert_eq!(a.next(), None);
    }

    #[test]
    fn vec_factory_partitions_round_robin() {
        let f = VecAdapter::factory((0..10).map(|i| i.to_string()).collect());
        let mut p0 = f(0, 2).unwrap();
        let mut p1 = f(1, 2).unwrap();
        let mut all = Vec::new();
        while let Some(r) = p0.next() {
            all.push(r);
        }
        while let Some(r) = p1.next() {
            all.push(r);
        }
        all.sort_by_key(|s| s.parse::<i64>().unwrap());
        assert_eq!(all, (0..10).map(|i| i.to_string()).collect::<Vec<_>>());
    }

    #[test]
    fn generator_produces_count() {
        let mut g = GeneratorAdapter::new(3, |i| format!("r{i}"));
        assert_eq!(g.next().as_deref(), Some("r0"));
        assert_eq!(g.next().as_deref(), Some("r1"));
        assert_eq!(g.next().as_deref(), Some("r2"));
        assert_eq!(g.next(), None);
    }

    #[test]
    fn rate_limiter_paces() {
        let inner = Box::new(GeneratorAdapter::new(20, |i| i.to_string()));
        let mut a = RateLimitedAdapter::new(inner, 1000.0);
        let t0 = Instant::now();
        let mut n = 0;
        while a.next().is_some() {
            n += 1;
        }
        assert_eq!(n, 20);
        // 20 records at 1000/s ≈ 19 ms minimum.
        assert!(t0.elapsed() >= Duration::from_millis(15), "elapsed {:?}", t0.elapsed());
    }

    #[test]
    fn socket_adapter_reads_lines() {
        let adapter = SocketAdapter::bind("127.0.0.1:0").unwrap();
        let addr = adapter.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            use std::io::Write;
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            writeln!(s, "{{\"id\": 1}}").unwrap();
            writeln!(s).unwrap(); // blank lines skipped
            writeln!(s, "{{\"id\": 2}}").unwrap();
        });
        let mut adapter = adapter;
        assert_eq!(adapter.next().as_deref(), Some("{\"id\": 1}"));
        assert_eq!(adapter.next().as_deref(), Some("{\"id\": 2}"));
        assert_eq!(adapter.next(), None);
        writer.join().unwrap();
    }
}

//! # idea-core — the IDEA ingestion framework
//!
//! The paper's contribution (§5–§6): a data-feed facility whose
//! enrichment UDFs are evaluated with the **per-batch computing model**,
//! so stateful UDFs keep the full power of SQL++ *and* see reference-
//! data updates between batches. The pipeline is decoupled into three
//! layers connected by partition holders:
//!
//! ```text
//! intake job (continuous)      computing job (per batch)        storage job (continuous)
//! Adapter ─ RR-partition ─▶ [passive holder] ─ parse ─ UDF ─▶ [active holder] ─ hash ─ LSM
//! ```
//!
//! The computing job is **predeployed** (compiled once, invoked per
//! batch) and each invocation builds fresh UDF intermediate state from a
//! dataset snapshot — paper §5.1's freshness guarantee.
//!
//! Entry points:
//!
//! * [`IngestionEngine`] — catalog + cluster + Active Feed Manager, with
//!   full SQL++ DDL including `CREATE FEED` (Figure 4);
//! * [`FeedSpec`] — programmatic feed construction (used heavily by the
//!   benchmark harness): pipeline mode (static/decoupled), computing
//!   model (per-record/per-batch/stream), batch size, intake placement,
//!   predeployment;
//! * [`adapter`] — socket, generator, replay, and rate-limited adapters.
//!
//! Fault tolerance (the `idea-ft` crate, re-exported here): feeds run
//! under a [`SupervisionSpec`] with per-stage [`ErrorPolicy`]s
//! (retry/skip/dead-letter/restart), a dead-letter dataset for poison
//! records, checkpointed restart from per-partition intake offsets, and
//! a deterministic [`FaultPlan`] injector for chaos testing.

pub mod adapter;
pub mod afm;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod models;
mod pipeline;

pub use adapter::{
    Adapter, AdapterFactory, GeneratorAdapter, RateLimitedAdapter, SocketAdapter, VecAdapter,
};
pub use afm::{ActiveFeedManager, FeedHandle};
pub use engine::{ExecOutcome, IngestionEngine};
pub use error::{Error, ErrorCode, IngestError};
pub use idea_ft::{
    ErrorPolicy, Fallback, Fault, FaultPlan, RestartPolicy, RetryPolicy, SupervisionSpec,
};
pub use metrics::{FeedMetrics, IngestionReport};
pub use models::{ComputingModel, FeedSpec, PipelineMode};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, IngestError>;

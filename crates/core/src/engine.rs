//! The user-facing engine: executes SQL++ scripts *including* feed DDL
//! (Figure 4's `CREATE FEED` / `CONNECT FEED` / `START FEED` /
//! `STOP FEED`), delegating everything else to the query engine.

use std::collections::HashMap;
use std::sync::Arc;

use idea_hyracks::Cluster;
use idea_query::ast::Statement;
use idea_query::{Catalog, Session, SessionConfig, StatementResult};
use idea_storage::MaintenanceScheduler;
use parking_lot::Mutex;

use crate::adapter::{AdapterFactory, SocketAdapter};
use crate::afm::{ActiveFeedManager, FeedHandle};
use crate::error::IngestError;
use crate::metrics::IngestionReport;
use crate::models::{ComputingModel, FeedSpec, PipelineMode};
use crate::Result;

/// Outcome of executing one statement through the engine.
#[derive(Debug)]
pub enum ExecOutcome {
    /// A non-feed statement, executed by the query engine.
    Statement(StatementResult),
    /// Feed declared.
    FeedCreated,
    /// Feed connected to a dataset.
    FeedConnected,
    /// Feed started.
    FeedStarted,
    /// Feed stopped and drained.
    FeedStopped(IngestionReport),
}

#[derive(Debug, Default, Clone)]
struct FeedDecl {
    options: HashMap<String, String>,
    dataset: Option<String>,
    function: Option<String>,
}

/// A single-process AsterixDB-like instance: simulated cluster, catalog,
/// and the Active Feed Manager.
pub struct IngestionEngine {
    cluster: Arc<Cluster>,
    catalog: Arc<Catalog>,
    session: Session,
    afm: ActiveFeedManager,
    maintenance: Arc<MaintenanceScheduler>,
    adapters: Mutex<HashMap<String, AdapterFactory>>,
    feeds: Mutex<HashMap<String, FeedDecl>>,
}

impl IngestionEngine {
    /// Builds an engine over an existing cluster/catalog pair (their
    /// partition counts must agree). The engine owns the background
    /// flush/merge pool; every dataset in the catalog routes its LSM
    /// maintenance through it.
    pub fn new(cluster: Arc<Cluster>, catalog: Arc<Catalog>) -> Arc<IngestionEngine> {
        let maintenance = catalog.maintenance().unwrap_or_else(|| {
            let sched = MaintenanceScheduler::new(cluster.node_count().min(4));
            catalog.set_maintenance(sched.clone());
            sched
        });
        let afm = ActiveFeedManager::new(cluster.clone(), catalog.clone());
        let session = Session::with_cluster(catalog.clone(), cluster.clone());
        Arc::new(IngestionEngine {
            cluster,
            catalog,
            session,
            afm,
            maintenance,
            adapters: Mutex::new(HashMap::new()),
            feeds: Mutex::new(HashMap::new()),
        })
    }

    /// Convenience: an `n`-node engine with default configuration.
    pub fn with_nodes(n: usize) -> Arc<IngestionEngine> {
        IngestionEngine::new(Cluster::with_nodes(n), Catalog::new(n))
    }

    /// An `n`-node engine with a durable-storage root: datasets created
    /// `WITH {"storage": "disk"}` persist under `root`, previously
    /// persisted datasets are recovered before the engine serves its
    /// first statement, and feed checkpoints survive restarts.
    pub fn with_storage_root(
        n: usize,
        root: impl Into<std::path::PathBuf>,
    ) -> Result<Arc<IngestionEngine>> {
        let catalog = Catalog::new(n);
        catalog.set_storage_root(root)?;
        Ok(IngestionEngine::new(Cluster::with_nodes(n), catalog))
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn afm(&self) -> &ActiveFeedManager {
        &self.afm
    }

    /// The engine's shared default SQL++ session.
    #[deprecated(
        since = "0.6.0",
        note = "build a configured session with IngestionEngine::new_session instead of \
                mutating the engine-wide shared one"
    )]
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Builds a new SQL++ session over the engine's catalog and cluster
    /// from an explicit [`SessionConfig`] (execution mode, parameter
    /// defaults, tenant id, result batch size). Sessions are
    /// independent; all of them see the same data and share compiled
    /// plans when given a [shared plan
    /// cache](SessionConfig::shared_plan_cache).
    pub fn new_session(&self, config: SessionConfig) -> Session {
        config.build_on(self.catalog.clone(), self.cluster.clone())
    }

    /// The engine-wide metrics registry: per-feed pipeline counters,
    /// holder queue gauges, storage stats, and Hyracks job/task
    /// instruments. `engine.metrics().snapshot()` is the one-stop view.
    pub fn metrics(&self) -> &Arc<idea_obs::MetricsRegistry> {
        self.afm.metrics()
    }

    /// Registers a custom adapter usable from feed DDL via
    /// `"adapter-name": "<name>"`.
    pub fn register_adapter(&self, name: impl Into<String>, factory: AdapterFactory) {
        self.adapters.lock().insert(name.into(), factory);
    }

    /// Starts a programmatically built feed (bypasses DDL).
    pub fn start_feed(&self, spec: FeedSpec) -> Result<Arc<FeedHandle>> {
        self.afm.start(spec)
    }

    /// Stops a feed and waits for it to drain.
    pub fn stop_feed(&self, name: &str) -> Result<IngestionReport> {
        self.afm.stop_and_wait(name)
    }

    /// The engine's background flush/merge pool.
    pub fn maintenance(&self) -> &Arc<MaintenanceScheduler> {
        &self.maintenance
    }

    /// Shuts the engine down deterministically: stops every active feed,
    /// then drains and joins the maintenance pool. After this no worker
    /// thread of the engine is left running; datasets fall back to
    /// inline flush/merge. Idempotent.
    pub fn shutdown(&self) {
        for name in self.afm.active_feeds() {
            let _ = self.afm.stop_and_wait(&name);
        }
        self.maintenance.shutdown();
    }

    /// Executes a script of `;`-separated statements.
    pub fn run_sqlpp(&self, text: &str) -> Result<Vec<ExecOutcome>> {
        let stmts = idea_query::parser::parse_statements(text)?;
        stmts.iter().map(|s| self.execute(s)).collect()
    }

    /// Executes one parsed statement.
    pub fn execute(&self, stmt: &Statement) -> Result<ExecOutcome> {
        match stmt {
            Statement::CreateFeed { name, options } => {
                let mut feeds = self.feeds.lock();
                if feeds.contains_key(name) {
                    return Err(IngestError::Feed(format!("feed {name} already exists")));
                }
                feeds.insert(
                    name.clone(),
                    FeedDecl { options: options.iter().cloned().collect(), ..Default::default() },
                );
                Ok(ExecOutcome::FeedCreated)
            }
            Statement::ConnectFeed { feed, dataset, function } => {
                let mut feeds = self.feeds.lock();
                let decl = feeds
                    .get_mut(feed)
                    .ok_or_else(|| IngestError::Feed(format!("no feed named {feed}")))?;
                decl.dataset = Some(dataset.clone());
                decl.function = function.clone();
                Ok(ExecOutcome::FeedConnected)
            }
            Statement::StartFeed { name } => {
                let decl = self
                    .feeds
                    .lock()
                    .get(name)
                    .cloned()
                    .ok_or_else(|| IngestError::Feed(format!("no feed named {name}")))?;
                let spec = self.spec_from_decl(name, &decl)?;
                self.afm.start(spec)?;
                Ok(ExecOutcome::FeedStarted)
            }
            Statement::StopFeed { name } => {
                let report = self.afm.stop_and_wait(name)?;
                Ok(ExecOutcome::FeedStopped(report))
            }
            other => Ok(ExecOutcome::Statement(self.session.execute(other)?)),
        }
    }

    fn spec_from_decl(&self, name: &str, decl: &FeedDecl) -> Result<FeedSpec> {
        let dataset = decl.dataset.clone().ok_or_else(|| {
            IngestError::Feed(format!("feed {name} is not connected to a dataset"))
        })?;
        let adapter_name = decl
            .options
            .get("adapter-name")
            .cloned()
            .unwrap_or_else(|| "socket_adapter".to_owned());
        let adapter: AdapterFactory = if adapter_name == "socket_adapter" {
            let sockets = decl.options.get("sockets").cloned().ok_or_else(|| {
                IngestError::Feed(format!("feed {name} uses socket_adapter without 'sockets'"))
            })?;
            let addrs: Vec<String> = sockets.split(',').map(|s| s.trim().to_owned()).collect();
            Arc::new(move |partition, _partitions| {
                let addr = &addrs[partition % addrs.len()];
                // A bind failure is a feed error, not a panic: it flows
                // through the intake job into `FeedHandle::wait`.
                let adapter = SocketAdapter::bind(addr).map_err(|e| {
                    IngestError::Feed(format!("socket adapter cannot bind {addr}: {e}"))
                })?;
                Ok(Box::new(adapter) as Box<dyn crate::adapter::Adapter>)
            })
        } else {
            self.adapters.lock().get(&adapter_name).cloned().ok_or_else(|| {
                IngestError::Feed(format!("unknown adapter '{adapter_name}' for feed {name}"))
            })?
        };

        let mut spec = FeedSpec::new(name, dataset, adapter);
        spec.function = decl.function.clone();
        if let Some(b) = decl.options.get("batch-size") {
            spec.batch_size =
                b.parse().map_err(|_| IngestError::Feed(format!("bad batch-size '{b}'")))?;
        }
        if let Some(m) = decl.options.get("computing-model") {
            spec.model = match m.as_str() {
                "per-record" => ComputingModel::PerRecord,
                "per-batch" => ComputingModel::PerBatch,
                "stream" => ComputingModel::Stream,
                other => return Err(IngestError::Feed(format!("bad computing-model '{other}'"))),
            };
        }
        if let Some(m) = decl.options.get("mode") {
            spec.mode = match m.as_str() {
                "static" => PipelineMode::Static,
                "decoupled" | "dynamic" => PipelineMode::Decoupled,
                other => return Err(IngestError::Feed(format!("bad mode '{other}'"))),
            };
        }
        if let Some(nodes) = decl.options.get("intake-nodes") {
            if nodes == "all" {
                spec.intake_nodes = (0..self.cluster.node_count()).collect();
            } else {
                spec.intake_nodes = nodes
                    .split(',')
                    .map(|s| s.trim().parse())
                    .collect::<std::result::Result<Vec<usize>, _>>()
                    .map_err(|_| IngestError::Feed(format!("bad intake-nodes '{nodes}'")))?;
            }
        }
        if let Some(p) = decl.options.get("predeploy") {
            spec.predeploy = p == "true";
        }
        apply_supervision_options(&mut spec, &decl.options)?;
        Ok(spec)
    }
}

impl Drop for IngestionEngine {
    fn drop(&mut self) {
        // The catalog (and its datasets) may outlive the engine; the
        // pool must not — join its workers now.
        self.maintenance.shutdown();
    }
}

/// Parses the fault-tolerance feed options into the spec's
/// [`SupervisionSpec`]:
///
/// * `on-parse-error` / `on-udf-error` / `on-adapter-error` /
///   `on-storage-error` — one of `abort`, `skip`, `dead-letter`,
///   `retry`, `restart`;
/// * `retry-attempts`, `retry-backoff-ms` — the retry policy used by
///   every stage configured as `retry`;
/// * `dead-letter-dataset` — target dataset for captured records
///   (defaults to `<feed>_dead_letters`);
/// * `max-restarts`, `restart-backoff-ms` — the feed restart budget;
/// * `checkpoint-interval` — commit an ingestion checkpoint every N
///   computing batches.
fn apply_supervision_options(spec: &mut FeedSpec, options: &HashMap<String, String>) -> Result<()> {
    use idea_ft::{ErrorPolicy, Fallback, RetryPolicy};

    let parse_u64 = |key: &str| -> Result<Option<u64>> {
        options
            .get(key)
            .map(|v| v.parse().map_err(|_| IngestError::Feed(format!("bad {key} '{v}'"))))
            .transpose()
    };
    let retry_policy = {
        let mut p = RetryPolicy::default();
        if let Some(n) = parse_u64("retry-attempts")? {
            p.max_attempts = n as u32;
        }
        if let Some(ms) = parse_u64("retry-backoff-ms")? {
            p.base = std::time::Duration::from_millis(ms);
        }
        p
    };
    let parse_policy = |key: &str| -> Result<Option<ErrorPolicy>> {
        let Some(v) = options.get(key) else { return Ok(None) };
        let policy = match v.as_str() {
            "abort" => ErrorPolicy::Abort,
            "skip" => ErrorPolicy::Skip,
            "dead-letter" => ErrorPolicy::SkipToDeadLetter,
            "retry" => ErrorPolicy::retry(retry_policy.clone(), Fallback::DeadLetter),
            "restart" => ErrorPolicy::RestartFeed,
            other => return Err(IngestError::Feed(format!("bad {key} '{other}'"))),
        };
        Ok(Some(policy))
    };
    if let Some(p) = parse_policy("on-parse-error")? {
        spec.supervision.parse = p;
    }
    if let Some(p) = parse_policy("on-udf-error")? {
        spec.supervision.enrich = p;
    }
    if let Some(p) = parse_policy("on-adapter-error")? {
        spec.supervision.adapter = p;
    }
    if let Some(p) = parse_policy("on-storage-error")? {
        spec.supervision.storage = p;
    }
    if let Some(ds) = options.get("dead-letter-dataset") {
        spec.supervision.dead_letter_dataset = Some(ds.clone());
    }
    if let Some(n) = parse_u64("max-restarts")? {
        spec.supervision.restart.max_restarts = n as u32;
    }
    if let Some(ms) = parse_u64("restart-backoff-ms")? {
        spec.supervision.restart.backoff.base = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = parse_u64("checkpoint-interval")? {
        spec.supervision.checkpoint_interval = Some(n);
    }
    Ok(())
}

//! Failure-injection tests: poison records, failing UDFs, and shutdown
//! robustness.

use std::sync::Arc;

use idea_adm::Value;
use idea_core::{FeedSpec, IngestionEngine, VecAdapter};
use idea_query::{Catalog, Session, StatementResult};

fn run_sqlpp(catalog: &Arc<Catalog>, text: &str) -> idea_query::Result<Vec<StatementResult>> {
    Session::new(catalog.clone()).run_script(text)
}
use idea_query::QueryError;

fn setup() -> Arc<IngestionEngine> {
    let engine = IngestionEngine::with_nodes(2);
    run_sqlpp(
        engine.catalog(),
        r#"
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
        "#,
    )
    .unwrap();
    engine
}

fn tweets(n: i64) -> Vec<String> {
    (0..n).map(|i| format!(r#"{{"id": {i}, "text": "t{i}"}}"#)).collect()
}

#[test]
fn poison_records_dropped_not_fatal() {
    let engine = setup();
    // A native UDF that fails on every 7th record.
    engine
        .catalog()
        .register_native_function(
            "flaky",
            1,
            Arc::new(|| {
                Box::new(|args: &[Value]| {
                    let id = args[0]
                        .as_object()
                        .and_then(|o| o.get("id"))
                        .and_then(Value::as_int)
                        .unwrap_or(0);
                    if id % 7 == 0 {
                        Err(QueryError::Eval("poison record".into()))
                    } else {
                        Ok(Value::Array(vec![args[0].clone()]))
                    }
                }) as Box<dyn idea_query::NativeUdf>
            }),
        )
        .unwrap();
    let spec = FeedSpec::new("flaky", "Tweets", VecAdapter::factory(tweets(70)))
        .with_function("flaky")
        .with_batch_size(10);
    let report = engine.start_feed(spec).unwrap().wait().unwrap();
    assert_eq!(report.enrich_errors, 10, "ids 0,7,...,63 fail");
    assert_eq!(report.records_stored, 60);
    assert_eq!(engine.catalog().dataset("Tweets").unwrap().len(), 60);
}

#[test]
fn always_failing_udf_still_drains_feed() {
    let engine = setup();
    engine
        .catalog()
        .register_native_function(
            "alwaysfail",
            1,
            Arc::new(|| {
                Box::new(|_args: &[Value]| -> idea_query::Result<Value> {
                    Err(QueryError::Eval("nope".into()))
                }) as Box<dyn idea_query::NativeUdf>
            }),
        )
        .unwrap();
    let spec = FeedSpec::new("af", "Tweets", VecAdapter::factory(tweets(50)))
        .with_function("alwaysfail")
        .with_batch_size(8);
    // The feed must terminate (no deadlock) and report the drops.
    let report = engine.start_feed(spec).unwrap().wait().unwrap();
    assert_eq!(report.enrich_errors, 50);
    assert_eq!(report.records_stored, 0);
}

#[test]
fn missing_function_at_start_is_immediate_error() {
    let engine = setup();
    let spec =
        FeedSpec::new("nf", "Tweets", VecAdapter::factory(tweets(5))).with_function("doesNotExist");
    assert!(engine.start_feed(spec).is_err(), "fail fast, before any job starts");
}

#[test]
fn all_records_malformed_still_terminates() {
    let engine = setup();
    let junk: Vec<String> = (0..40).map(|i| format!("<<garbage {i}")).collect();
    let spec = FeedSpec::new("junk", "Tweets", VecAdapter::factory(junk)).with_batch_size(8);
    let report = engine.start_feed(spec).unwrap().wait().unwrap();
    assert_eq!(report.parse_errors, 40);
    assert_eq!(report.records_stored, 0);
}

#[test]
fn two_feeds_run_concurrently_into_different_datasets() {
    let engine = setup();
    run_sqlpp(engine.catalog(), "CREATE DATASET Tweets2(TweetType) PRIMARY KEY id;").unwrap();
    let a = engine
        .start_feed(
            FeedSpec::new("fa", "Tweets", VecAdapter::factory(tweets(150))).with_batch_size(16),
        )
        .unwrap();
    let b = engine
        .start_feed(
            FeedSpec::new("fb", "Tweets2", VecAdapter::factory(tweets(120))).with_batch_size(16),
        )
        .unwrap();
    let ra = a.wait().unwrap();
    let rb = b.wait().unwrap();
    assert_eq!(ra.records_stored, 150);
    assert_eq!(rb.records_stored, 120);
    assert_eq!(engine.catalog().dataset("Tweets").unwrap().len(), 150);
    assert_eq!(engine.catalog().dataset("Tweets2").unwrap().len(), 120);
}

#[test]
fn stopping_twice_and_waiting_twice_is_safe() {
    let engine = setup();
    let spec = FeedSpec::new("tw", "Tweets", VecAdapter::factory(tweets(20)));
    let handle = engine.start_feed(spec).unwrap();
    handle.stop();
    handle.stop(); // idempotent
    let first = handle.wait().unwrap();
    let second = handle.wait().expect("second wait returns the cached report");
    assert_eq!(first.records_stored, second.records_stored);
}

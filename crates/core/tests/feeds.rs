//! End-to-end ingestion tests: the full intake → computing → storage
//! pipeline over a simulated cluster.

use std::sync::Arc;

use idea_adm::Value;
use idea_core::{ComputingModel, ExecOutcome, FeedSpec, IngestionEngine, PipelineMode, VecAdapter};
use idea_query::{Catalog, Session, StatementResult};

fn run_sqlpp(catalog: &Arc<Catalog>, text: &str) -> idea_query::Result<Vec<StatementResult>> {
    Session::new(catalog.clone()).run_script(text)
}

fn run_query(catalog: &Arc<Catalog>, text: &str) -> idea_query::Result<idea_adm::Value> {
    Session::new(catalog.clone()).query(text)
}

fn tweet_json(id: i64, country: &str, text: &str) -> String {
    format!(r#"{{"id": {id}, "text": "{text}", "country": "{country}"}}"#)
}

fn setup(nodes: usize) -> Arc<IngestionEngine> {
    let engine = IngestionEngine::with_nodes(nodes);
    run_sqlpp(
        engine.catalog(),
        r#"
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
        CREATE TYPE WordType AS OPEN { wid: int64, country: string, word: string };
        CREATE DATASET SensitiveWords(WordType) PRIMARY KEY wid;
        INSERT INTO SensitiveWords ([
            {"wid": 1, "country": "US", "word": "bomb"},
            {"wid": 2, "country": "FR", "word": "bombe"}
        ]);
        CREATE FUNCTION tweetSafetyCheck(tweet) {
            LET safety_check_flag = CASE
              EXISTS(SELECT s FROM SensitiveWords s
                     WHERE tweet.country = s.country AND contains(tweet.text, s.word))
              WHEN true THEN "Red" ELSE "Green"
            END
            SELECT tweet.*, safety_check_flag
        };
        "#,
    )
    .unwrap();
    engine
}

fn tweets(n: i64) -> Vec<String> {
    (0..n)
        .map(|i| {
            let country = if i % 2 == 0 { "US" } else { "FR" };
            let text = if i % 3 == 0 { "bomb threat" } else { "sunny day" };
            tweet_json(i, country, text)
        })
        .collect()
}

fn red_count(engine: &IngestionEngine) -> usize {
    run_query(
        engine.catalog(),
        r#"SELECT VALUE t.id FROM Tweets t WHERE t.safety_check_flag = "Red""#,
    )
    .unwrap()
    .as_array()
    .unwrap()
    .len()
}

#[test]
fn decoupled_feed_ingests_and_enriches() {
    let engine = setup(3);
    let spec = FeedSpec::new("TweetFeed", "Tweets", VecAdapter::factory(tweets(300)))
        .with_function("tweetSafetyCheck")
        .with_batch_size(40);
    let handle = engine.start_feed(spec).unwrap();
    let report = handle.wait().unwrap();
    engine.afm().remove("TweetFeed");

    assert_eq!(report.records_stored, 300);
    assert_eq!(report.parse_errors, 0);
    assert!(report.computing_jobs >= 1);
    let ds = engine.catalog().dataset("Tweets").unwrap();
    assert_eq!(ds.len(), 300);
    // US tweets (even ids) containing "bomb" (ids % 3 == 0): ids ≡ 0 mod 6 → 50.
    // FR tweets (odd ids) never contain "bombe".
    assert_eq!(red_count(&engine), 50);
    // Every record kept its enrichment field.
    let greens = run_query(
        engine.catalog(),
        r#"SELECT VALUE t.id FROM Tweets t WHERE t.safety_check_flag = "Green""#,
    )
    .unwrap();
    assert_eq!(greens.as_array().unwrap().len(), 250);
}

#[test]
fn static_feed_matches_decoupled_output() {
    let engine = setup(2);
    let spec = FeedSpec::new("StaticFeed", "Tweets", VecAdapter::factory(tweets(120)))
        .with_function("tweetSafetyCheck")
        .with_mode(PipelineMode::Static);
    let handle = engine.start_feed(spec).unwrap();
    let report = handle.wait().unwrap();
    assert_eq!(report.records_stored, 120);
    assert_eq!(report.computing_jobs, 0, "static pipelines have no computing jobs");
    assert_eq!(red_count(&engine), 20);
}

#[test]
fn feed_without_udf_moves_data() {
    let engine = setup(2);
    let spec =
        FeedSpec::new("plain", "Tweets", VecAdapter::factory(tweets(100))).with_batch_size(16);
    let handle = engine.start_feed(spec).unwrap();
    let report = handle.wait().unwrap();
    assert_eq!(report.records_stored, 100);
    assert_eq!(engine.catalog().dataset("Tweets").unwrap().len(), 100);
}

#[test]
fn malformed_records_counted_not_fatal() {
    let engine = setup(1);
    let mut recs = tweets(10);
    recs.insert(3, "{not json".to_owned());
    recs.insert(7, r#"{"text": "missing id"}"#.to_owned());
    let spec = FeedSpec::new("dirty", "Tweets", VecAdapter::factory(recs));
    let report = engine.start_feed(spec).unwrap().wait().unwrap();
    assert_eq!(report.records_stored, 10);
    assert_eq!(report.parse_errors, 2);
}

#[test]
fn per_batch_model_sees_reference_updates_between_batches() {
    let engine = setup(1);
    // Slow, rate-limited feed so the update lands mid-stream.
    let records: Vec<String> = (0..60).map(|i| tweet_json(i, "DE", "der zug")).collect();
    let factory: idea_core::AdapterFactory = {
        let records = Arc::new(records);
        Arc::new(move |_, _| {
            let inner = Box::new(VecAdapter::new((*records).clone()));
            Ok(Box::new(idea_core::RateLimitedAdapter::new(inner, 300.0))
                as Box<dyn idea_core::Adapter>)
        })
    };
    let spec = FeedSpec::new("updating", "Tweets", factory)
        .with_function("tweetSafetyCheck")
        .with_batch_size(10)
        .with_model(ComputingModel::PerBatch);
    let handle = engine.start_feed(spec).unwrap();
    // Mid-feed reference update: "zug" becomes sensitive for DE.
    std::thread::sleep(std::time::Duration::from_millis(80));
    run_sqlpp(
        engine.catalog(),
        r#"UPSERT INTO SensitiveWords ([{"wid": 50, "country": "DE", "word": "zug"}]);"#,
    )
    .unwrap();
    // Let the (finite) feed drain naturally — stopping early would
    // cancel pending input.
    let report = handle.wait().unwrap();
    assert_eq!(report.records_stored, 60);
    let reds = red_count(&engine);
    // Early batches enriched before the update → Green; later ones Red.
    assert!(reds > 0, "later batches must see the update (got {reds} red)");
    assert!(reds < 60, "earlier batches predate the update (got {reds} red)");
}

#[test]
fn stream_model_never_sees_updates() {
    let engine = setup(1);
    let records: Vec<String> = (0..40).map(|i| tweet_json(i, "DE", "der zug")).collect();
    let factory: idea_core::AdapterFactory = {
        let records = Arc::new(records);
        Arc::new(move |_, _| {
            let inner = Box::new(VecAdapter::new((*records).clone()));
            Ok(Box::new(idea_core::RateLimitedAdapter::new(inner, 300.0))
                as Box<dyn idea_core::Adapter>)
        })
    };
    let spec = FeedSpec::new("streamy", "Tweets", factory)
        .with_function("tweetSafetyCheck")
        .with_batch_size(10)
        .with_model(ComputingModel::Stream);
    let handle = engine.start_feed(spec).unwrap();
    // Force the first batch (which builds the stream state) to happen
    // before the update by letting some records flow.
    std::thread::sleep(std::time::Duration::from_millis(80));
    run_sqlpp(
        engine.catalog(),
        r#"UPSERT INTO SensitiveWords ([{"wid": 50, "country": "DE", "word": "zug"}]);"#,
    )
    .unwrap();
    let report = handle.wait().unwrap();
    assert_eq!(report.records_stored, 40);
    // Model 3 keeps the stale hash table built before the update.
    assert_eq!(red_count(&engine), 0, "stream model must not see the update");
}

#[test]
fn per_record_model_enriches_correctly() {
    let engine = setup(1);
    let spec = FeedSpec::new("rec", "Tweets", VecAdapter::factory(tweets(30)))
        .with_function("tweetSafetyCheck")
        .with_batch_size(10)
        .with_model(ComputingModel::PerRecord);
    let report = engine.start_feed(spec).unwrap().wait().unwrap();
    assert_eq!(report.records_stored, 30);
    assert_eq!(red_count(&engine), 5);
}

#[test]
fn no_predeploy_ablation_still_correct() {
    let engine = setup(2);
    let spec = FeedSpec::new("nopredeploy", "Tweets", VecAdapter::factory(tweets(100)))
        .with_function("tweetSafetyCheck")
        .with_batch_size(20)
        .with_predeploy(false);
    let report = engine.start_feed(spec).unwrap().wait().unwrap();
    assert_eq!(report.records_stored, 100);
    assert!(engine.cluster().deployed_jobs().invocation_count() == 0);
}

#[test]
fn balanced_intake_uses_all_nodes() {
    let engine = setup(3);
    let spec = FeedSpec::new("balanced", "Tweets", VecAdapter::factory(tweets(90)))
        .balanced(3)
        .with_batch_size(10);
    let report = engine.start_feed(spec).unwrap().wait().unwrap();
    assert_eq!(report.records_stored, 90);
}

#[test]
fn duplicate_feed_name_rejected_and_cleaned_up() {
    let engine = setup(1);
    let spec = FeedSpec::new("dup", "Tweets", VecAdapter::factory(tweets(5)));
    let h = engine.start_feed(spec.clone()).unwrap();
    assert!(engine.start_feed(spec.clone()).is_err());
    h.wait().unwrap();
    engine.afm().remove("dup");
    // After cleanup the name can be reused.
    let h2 = engine.start_feed(spec).unwrap();
    h2.wait().unwrap();
}

#[test]
fn unknown_dataset_or_function_fails_fast() {
    let engine = setup(1);
    let bad_ds = FeedSpec::new("f1", "Nope", VecAdapter::factory(vec![]));
    assert!(engine.start_feed(bad_ds).is_err());
    let bad_fn = FeedSpec::new("f2", "Tweets", VecAdapter::factory(vec![])).with_function("nope");
    assert!(engine.start_feed(bad_fn).is_err());
}

#[test]
fn feed_ddl_via_engine_with_socket_adapter() {
    let engine = setup(1);
    // Find a free port by binding and dropping.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap();
    drop(probe);

    let outcomes = engine
        .run_sqlpp(&format!(
            r#"CREATE FEED TweetFeed WITH {{
                 "type-name": "TweetType",
                 "adapter-name": "socket_adapter",
                 "format": "JSON",
                 "sockets": "{addr}",
                 "address-type": "IP",
                 "batch-size": "8"
               }};
               CONNECT FEED TweetFeed TO DATASET Tweets APPLY FUNCTION tweetSafetyCheck;
               START FEED TweetFeed;"#
        ))
        .unwrap();
    assert!(matches!(outcomes[2], ExecOutcome::FeedStarted));

    // Feed 20 tweets over a real TCP socket.
    let writer = std::thread::spawn(move || {
        use std::io::Write;
        // The adapter binds inside the task; retry the connect briefly.
        let mut stream = loop {
            match std::net::TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };
        for i in 0..20 {
            writeln!(stream, r#"{{"id": {i}, "text": "bomb", "country": "US"}}"#).unwrap();
        }
    });
    writer.join().unwrap();

    // Wait for the pipeline to drain the 20 records before stopping
    // (STOP cancels input still sitting in the adapter).
    let ds = engine.catalog().dataset("Tweets").unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while ds.len() < 20 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let outcome = engine.run_sqlpp("STOP FEED TweetFeed;").unwrap().pop().unwrap();
    let ExecOutcome::FeedStopped(report) = outcome else { panic!("expected FeedStopped") };
    assert_eq!(report.records_stored, 20);
    assert_eq!(red_count(&engine), 20);
}

#[test]
fn enriched_records_are_queryable_with_analytics() {
    let engine = setup(2);
    let spec = FeedSpec::new("an", "Tweets", VecAdapter::factory(tweets(60)))
        .with_function("tweetSafetyCheck")
        .with_batch_size(15);
    engine.start_feed(spec).unwrap().wait().unwrap();
    // The paper's Figure 9 analytical query over the *enriched* data.
    let v = run_query(
        engine.catalog(),
        r#"SELECT t.country Country, count(t) Num
           FROM Tweets t
           WHERE t.safety_check_flag = "Red"
           GROUP BY t.country ORDER BY t.country"#,
    )
    .unwrap();
    let rows = v.as_array().unwrap();
    assert_eq!(rows.len(), 1, "only US tweets get flagged in this workload");
    let o = rows[0].as_object().unwrap();
    assert_eq!(o.get("Country"), Some(&Value::str("US")));
    assert_eq!(o.get("Num"), Some(&Value::Int(10)));
}

#[test]
fn stop_cancels_pending_input_promptly() {
    let engine = setup(1);
    // An effectively infinite feed: stopping is the only way it ends.
    let factory: idea_core::AdapterFactory = Arc::new(|_, _| {
        Ok(Box::new(idea_core::RateLimitedAdapter::new(
            Box::new(idea_core::GeneratorAdapter::new(u64::MAX, |i| {
                format!(r#"{{"id": {i}, "text": "x", "country": "US"}}"#)
            })),
            500.0,
        )) as Box<dyn idea_core::Adapter>)
    });
    let spec = FeedSpec::new("endless", "Tweets", factory).with_batch_size(16);
    let handle = engine.start_feed(spec).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    let t0 = std::time::Instant::now();
    let report = handle.stop_and_wait().unwrap();
    assert!(t0.elapsed() < std::time::Duration::from_secs(5), "stop must not hang");
    assert!(report.records_stored > 0);
    assert!(report.records_stored < 10_000, "stop must cut the endless feed short");
}

#[test]
fn refresh_period_recorded() {
    let engine = setup(1);
    let spec = FeedSpec::new("t", "Tweets", VecAdapter::factory(tweets(100)))
        .with_function("tweetSafetyCheck")
        .with_batch_size(10);
    let report = engine.start_feed(spec).unwrap().wait().unwrap();
    assert!(report.computing_jobs >= 10, "jobs: {}", report.computing_jobs);
    assert!(report.avg_refresh_period > std::time::Duration::ZERO);
    assert_eq!(report.batch_durations.len() as u64, report.computing_jobs);
}

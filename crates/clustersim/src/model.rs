//! The virtual-time pipeline model.

/// How the enrichment UDF consumes reference data (paper §4.3.4's three
/// cases, as realized in the evaluation's UDFs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EnrichKind {
    /// No UDF: the computing job only moves data (Figure 24).
    None,
    /// Hash join with a *replicated* build (what the real engine does:
    /// every node scans the full reference snapshot into its own table
    /// once per invocation); tweets are repartitioned so each node
    /// probes `records/N` of the invocation.
    HashJoin {
        /// Per-record probe + residual cost (seconds).
        per_probe: f64,
    },
    /// Index nested-loop join: probes a live index. Incoming records are
    /// *broadcast* ("the Index Nested Loop Join algorithm needed to
    /// broadcast the incoming tweets to all nodes", §7.4.2), so every
    /// node probes every record of the batch.
    IndexJoin {
        /// Per-record index probe cost (seconds).
        per_probe: f64,
    },
    /// Partitioned scan join (the `noindex` naive variant): each node
    /// scans its local reference partition for every record of the
    /// batch (records broadcast, reference partitioned).
    ScanJoin {
        /// Per-reference-row filter cost (seconds).
        per_row: f64,
    },
}

/// Static (old framework) vs decoupled (new framework) pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineKind {
    /// Single job; intake+parse+UDF coupled on the intake node(s); UDF
    /// state built once (Model 3).
    Static,
    /// Intake / computing / storage jobs; computing job re-invoked per
    /// batch (Model 2).
    Dynamic,
}

/// Measured per-operation costs (seconds). The benchmark harness fills
/// these from real-engine microbenchmarks on the reproduction host.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Adapter receive + framing, per record.
    pub adapter_per_record: f64,
    /// JSON parse + validate, per record.
    pub parse_per_record: f64,
    /// Per-reference-row cost of building enrichment state (hash-table
    /// insert / materialization), per invocation.
    pub build_per_row: f64,
    /// Fixed per-invocation state-setup cost per node (snapshot pinning,
    /// context creation).
    pub build_fixed: f64,
    /// LSM upsert, per record.
    pub store_per_record: f64,
    /// CC-side serial dispatch cost per task at job start.
    pub task_dispatch: f64,
    /// Parallel task start latency (message delivery).
    pub task_start: f64,
    /// Fixed per-job-invocation cost (driver bookkeeping).
    pub job_fixed: f64,
    /// Record size on the wire (the paper's tweets are ~450 bytes).
    pub record_bytes: f64,
    /// NIC bandwidth of one node (the paper's testbed: Gigabit
    /// Ethernet). The intake node both receives each record and
    /// forwards it to a peer, so it moves ~2× the record size.
    pub network_bytes_per_sec: f64,
}

impl CostModel {
    /// Effective per-record time on one intake node: CPU work plus the
    /// NIC receiving the record and forwarding it into the cluster.
    pub fn intake_per_record(&self) -> f64 {
        self.adapter_per_record + 2.0 * self.record_bytes / self.network_bytes_per_sec
    }

    /// Replaces the control-plane constants with values typical of a
    /// real distributed deployment (the paper's testbed starts a
    /// distributed job in hundreds of milliseconds; our in-process
    /// "cluster" does it in a fraction of a millisecond). The §7.4
    /// speed-up shapes — simple UDFs capped by invocation overhead,
    /// complex ones approaching ideal — live in this regime, so the
    /// scale-out figures apply it on top of the measured CPU costs.
    pub fn with_paper_control_plane(mut self) -> Self {
        self.job_fixed = 0.05;
        self.task_dispatch = 5.0e-3;
        self.task_start = 0.02;
        self
    }
}

impl CostModel {
    /// Plausible defaults for a ~2 GHz core (the benches replace these
    /// with measured values).
    pub fn nominal() -> Self {
        CostModel {
            adapter_per_record: 1.2e-6,
            parse_per_record: 6.0e-6,
            build_per_row: 0.6e-6,
            build_fixed: 2.0e-4,
            store_per_record: 4.0e-6,
            task_dispatch: 1.5e-4,
            task_start: 5.0e-4,
            job_fixed: 1.0e-3,
            record_bytes: 450.0,
            network_bytes_per_sec: 125.0e6, // 1 Gb/s
        }
    }
}

/// One simulated experiment.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    pub nodes: usize,
    /// Nodes running the adapter (1 = the paper's default, `nodes` =
    /// "balanced").
    pub intake_nodes: usize,
    /// Records each node's collector pulls per computing-job invocation
    /// — same convention as `FeedSpec::batch_size` (the paper's "420
    /// records/batch"); one invocation moves up to `batch_size × nodes`
    /// records.
    pub batch_size: u64,
    /// Total records ingested.
    pub total_records: u64,
    /// Total reference rows (split across nodes for builds/scans).
    pub ref_rows: u64,
    pub enrich: EnrichKind,
    pub pipeline: PipelineKind,
    /// Stages of the computing job (3 in the new framework: collector,
    /// evaluator, sink).
    pub computing_stages: u32,
}

impl SimConfig {
    /// Figure-24-style config: plain ingestion, no UDF.
    pub fn basic(nodes: usize, balanced: bool, batch_size: u64, total: u64) -> Self {
        SimConfig {
            nodes,
            intake_nodes: if balanced { nodes } else { 1 },
            batch_size,
            total_records: total,
            ref_rows: 0,
            enrich: EnrichKind::None,
            pipeline: PipelineKind::Dynamic,
            computing_stages: 3,
        }
    }
}

/// Simulation output.
#[derive(Debug, Clone, Copy)]
pub struct SimResult {
    /// Virtual wall-clock seconds for the whole run.
    pub elapsed: f64,
    /// Records per second.
    pub throughput: f64,
    /// Computing-job invocations (0 for static).
    pub computing_jobs: u64,
    /// Mean invocation duration (the refresh period, Figure 26).
    pub avg_refresh_period: f64,
}

/// Runs the model.
pub fn simulate(cost: &CostModel, cfg: &SimConfig) -> SimResult {
    assert!(cfg.nodes > 0 && cfg.intake_nodes > 0 && cfg.intake_nodes <= cfg.nodes);
    assert!(cfg.total_records > 0);
    match cfg.pipeline {
        PipelineKind::Static => simulate_static(cost, cfg),
        PipelineKind::Dynamic => simulate_dynamic(cost, cfg),
    }
}

/// Per-record enrichment time on the *critical* node for `records`
/// arriving in one invocation, plus the per-invocation state cost.
fn enrich_times(cost: &CostModel, cfg: &SimConfig, records: u64) -> (f64, f64) {
    let n = cfg.nodes as f64;
    let ref_per_node = cfg.ref_rows as f64 / n;
    match cfg.enrich {
        EnrichKind::None => (0.0, 0.0),
        EnrichKind::HashJoin { per_probe } => {
            // Build: replicated — every node scans the full reference
            // snapshot (the engine's broadcast-build join). Probe:
            // records repartitioned, so records/N per node.
            let build = cost.build_fixed + cfg.ref_rows as f64 * cost.build_per_row;
            let probe = (records as f64 / n) * per_probe;
            (build, probe)
        }
        EnrichKind::IndexJoin { per_probe } => {
            // Records broadcast: every node probes every record.
            (cost.build_fixed, records as f64 * per_probe)
        }
        EnrichKind::ScanJoin { per_row } => {
            // Records broadcast; each probe scans the local reference
            // partition.
            (cost.build_fixed, records as f64 * ref_per_node * per_row)
        }
    }
}

fn activation_time(cost: &CostModel, cfg: &SimConfig) -> f64 {
    // CC dispatches one message per task, serially; tasks then start in
    // parallel after the delivery latency.
    cost.job_fixed
        + cost.task_dispatch * (cfg.computing_stages as f64) * (cfg.nodes as f64)
        + cost.task_start
}

fn simulate_dynamic(cost: &CostModel, cfg: &SimConfig) -> SimResult {
    let n = cfg.nodes as f64;
    // Intake: adapters produce concurrently; aggregate production rate,
    // NIC-bound on each intake node.
    let intake_rate = cfg.intake_nodes as f64 / cost.intake_per_record();
    let produce_all_at = cfg.total_records as f64 / intake_rate;

    let mut now = 0.0f64;
    let mut consumed: u64 = 0;
    let mut jobs = 0u64;
    let mut busy = 0.0f64;
    let per_invocation_cap = cfg.batch_size * cfg.nodes as u64;

    while consumed < cfg.total_records {
        // Wait until a full batch is available (or production has ended,
        // in which case take what remains — the EOF path).
        let want = per_invocation_cap.min(cfg.total_records - consumed);
        let available_now = ((intake_rate * now) as u64).min(cfg.total_records) - consumed;
        let records = if available_now >= want {
            want
        } else {
            // Time when `want` records will exist.
            let t_ready = (consumed + want) as f64 / intake_rate;
            if t_ready > produce_all_at {
                // Production ends first: take the remainder at EOF.
                now = now.max(produce_all_at);
                cfg.total_records - consumed
            } else {
                now = now.max(t_ready);
                want
            }
        };
        // One computing-job invocation.
        let (state, probe_time) = enrich_times(cost, cfg, records);
        let parse_time = (records as f64 / n) * cost.parse_per_record;
        let duration = activation_time(cost, cfg) + state + parse_time + probe_time;
        now += duration;
        busy += duration;
        consumed += records;
        jobs += 1;
    }

    // Storage runs concurrently; it can only finish after the last
    // computing job and is capacity-bound by the per-node write rate.
    let store_time = (cfg.total_records as f64 / n) * cost.store_per_record;
    let elapsed = now.max(produce_all_at).max(store_time);
    SimResult {
        elapsed,
        throughput: cfg.total_records as f64 / elapsed,
        computing_jobs: jobs,
        avg_refresh_period: if jobs == 0 { 0.0 } else { busy / jobs as f64 },
    }
}

fn simulate_static(cost: &CostModel, cfg: &SimConfig) -> SimResult {
    // Coupled pipeline: each intake node pays adapter+parse+enrichment
    // per record; state built once (Model 3), so its cost is a one-off
    // latency, not a throughput term.
    let n = cfg.nodes as f64;
    let per_record_enrich = match cfg.enrich {
        EnrichKind::None => 0.0,
        EnrichKind::HashJoin { per_probe } => per_probe,
        // A static pipeline has no distributed computing job: probes and
        // scans run on the intake node against the full reference data.
        EnrichKind::IndexJoin { per_probe } => per_probe,
        EnrichKind::ScanJoin { per_row } => cfg.ref_rows as f64 * per_row,
    };
    let intake_per_record = cost.intake_per_record() + cost.parse_per_record + per_record_enrich;
    let intake_rate = cfg.intake_nodes as f64 / intake_per_record;
    let store_rate = n / cost.store_per_record;
    let rate = intake_rate.min(store_rate);
    let one_off = match cfg.enrich {
        EnrichKind::None => 0.0,
        _ => cost.build_fixed + (cfg.ref_rows as f64) * cost.build_per_row,
    };
    let elapsed = one_off + cfg.total_records as f64 / rate;
    SimResult {
        elapsed,
        throughput: cfg.total_records as f64 / elapsed,
        computing_jobs: 0,
        avg_refresh_period: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOTAL: u64 = 1_000_000;

    fn cost() -> CostModel {
        CostModel::nominal()
    }

    fn basic(nodes: usize, balanced: bool, batch: u64) -> SimResult {
        simulate(&cost(), &SimConfig::basic(nodes, balanced, batch, TOTAL))
    }

    #[test]
    fn static_ingestion_flat_with_cluster_size() {
        let mk = |nodes| {
            simulate(
                &cost(),
                &SimConfig {
                    pipeline: PipelineKind::Static,
                    ..SimConfig::basic(nodes, false, 420, TOTAL)
                },
            )
        };
        let t1 = mk(1).throughput;
        let t24 = mk(24).throughput;
        // Single-node parsing bottleneck: no speedup from more nodes.
        assert!((t24 / t1 - 1.0).abs() < 0.05, "static must stay flat: {t1} vs {t24}");
    }

    #[test]
    fn balanced_static_scales_linearly() {
        let mk = |nodes| {
            simulate(
                &cost(),
                &SimConfig {
                    pipeline: PipelineKind::Static,
                    ..SimConfig::basic(nodes, true, 420, TOTAL)
                },
            )
        };
        let t6 = mk(6).throughput;
        let t24 = mk(24).throughput;
        assert!(t24 / t6 > 3.0, "balanced static ≈ linear: {}", t24 / t6);
    }

    #[test]
    fn dynamic_larger_batches_faster() {
        let t1 = basic(12, true, 420).throughput;
        let t4 = basic(12, true, 1680).throughput;
        let t16 = basic(12, true, 6720).throughput;
        assert!(t4 > t1, "4X beats 1X: {t1} vs {t4}");
        assert!(t16 > t4, "16X beats 4X: {t4} vs {t16}");
    }

    #[test]
    fn balanced_dynamic_trails_balanced_static_more_at_scale() {
        let gap = |nodes| {
            let s = simulate(
                &cost(),
                &SimConfig {
                    pipeline: PipelineKind::Static,
                    ..SimConfig::basic(nodes, true, 420, TOTAL)
                },
            )
            .throughput;
            let d = basic(nodes, true, 420).throughput;
            s / d
        };
        let g6 = gap(6);
        let g24 = gap(24);
        assert!(g24 > g6, "invocation overhead grows with cluster size: {g6} vs {g24}");
        assert!(g6 >= 0.95, "at small scale the two are close: {g6}");
    }

    #[test]
    fn single_intake_dynamic_caps_at_intake_rate() {
        let t6 = basic(6, false, 6720).throughput;
        let t24 = basic(24, false, 6720).throughput;
        let cap = 1.0 / cost().adapter_per_record;
        assert!(t6 <= cap * 1.01);
        assert!(t24 <= cap * 1.01);
        // Converged: growth from 6 to 24 is modest.
        assert!(t24 / t6 < 1.6, "single-intake converges: {}", t24 / t6);
    }

    #[test]
    fn simple_hash_udf_speedup_poor_complex_good() {
        // The §7.4 speed-up regime needs real-cluster control-plane
        // costs (job activation dominating small jobs).
        let cost = cost().with_paper_control_plane();
        let speedup = |per_probe: f64, ref_rows: u64, batch: u64| {
            let mk = |nodes| {
                simulate(
                    &cost,
                    &SimConfig {
                        ref_rows,
                        enrich: EnrichKind::HashJoin { per_probe },
                        ..SimConfig::basic(nodes, true, batch, 3_000_000)
                    },
                )
                .throughput
            };
            mk(24) / mk(6)
        };
        let simple = speedup(0.5e-6, 500_000, 6720);
        let complex = speedup(300e-6, 500_000, 6720);
        assert!(simple < 3.0, "simple UDFs speed up poorly: {simple}");
        assert!(complex > 2.5, "complex UDFs benefit from nodes: {complex}");
        assert!(simple < complex, "complexity separates speedups");
        assert!(complex <= 4.05, "bounded by ideal 4x: {complex}");
    }

    #[test]
    fn bigger_batches_improve_speedup() {
        let cost = cost().with_paper_control_plane();
        let speedup = |batch| {
            let mk = |nodes| {
                simulate(
                    &cost,
                    &SimConfig {
                        ref_rows: 500_000,
                        enrich: EnrichKind::HashJoin { per_probe: 30e-6 },
                        ..SimConfig::basic(nodes, true, batch, 3_000_000)
                    },
                )
                .throughput
            };
            mk(24) / mk(6)
        };
        assert!(speedup(6720) > speedup(420), "16X batch speeds up better than 1X");
    }

    #[test]
    fn naive_scan_scales_index_join_saturates() {
        let mk = |nodes, enrich| {
            simulate(
                &cost(),
                &SimConfig {
                    ref_rows: 500_000,
                    enrich,
                    ..SimConfig::basic(nodes, true, 6720, 100_000)
                },
            )
            .throughput
        };
        // Naive: terrible at 6 nodes but keeps improving.
        let naive6 = mk(6, EnrichKind::ScanJoin { per_row: 0.05e-6 });
        let naive24 = mk(24, EnrichKind::ScanJoin { per_row: 0.05e-6 });
        assert!(naive24 / naive6 > 2.5, "naive scan scales: {}", naive24 / naive6);
        // Index join: better absolute, but broadcast limits its speedup.
        let inlj6 = mk(6, EnrichKind::IndexJoin { per_probe: 40e-6 });
        let inlj24 = mk(24, EnrichKind::IndexJoin { per_probe: 40e-6 });
        assert!(inlj6 > naive6, "index beats naive at small scale");
        assert!(inlj24 / inlj6 < naive24 / naive6, "broadcast limits INLJ speedup");
    }

    #[test]
    fn ref_scaleout_mild_degradation() {
        // §7.4.1: reference size and cluster grow together; throughput
        // drops only slightly.
        let mk = |k: usize| {
            simulate(
                &cost(),
                &SimConfig {
                    ref_rows: 500_000 * k as u64,
                    enrich: EnrichKind::HashJoin { per_probe: 50e-6 },
                    ..SimConfig::basic(6 * k, true, 6720, 100_000)
                },
            )
            .throughput
        };
        let t1 = mk(1);
        let t4 = mk(4);
        // §7.4.1's claim is "scaled well": no collapse, no dramatic win —
        // per-node build work stays constant, activation overhead and
        // per-node probe share move in opposite directions.
        assert!(t4 > 0.5 * t1, "scales well (no collapse): {t1} -> {t4}");
        assert!(t4 < 2.0 * t1, "no spurious superlinear gain: {t1} -> {t4}");
    }

    #[test]
    fn refresh_period_grows_with_batch_size() {
        let mk = |batch| {
            simulate(
                &cost(),
                &SimConfig {
                    ref_rows: 500_000,
                    enrich: EnrichKind::HashJoin { per_probe: 10e-6 },
                    ..SimConfig::basic(6, true, batch, 100_000)
                },
            )
            .avg_refresh_period
        };
        assert!(mk(6720) > mk(420));
    }

    #[test]
    fn conservation() {
        let r = basic(6, true, 420);
        assert!(r.computing_jobs >= TOTAL / (420 * 6));
        assert!(r.throughput > 0.0 && r.elapsed > 0.0);
    }
}

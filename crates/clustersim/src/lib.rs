//! # idea-clustersim — a cluster model for the scale-out experiments
//!
//! The reproduction host has a single CPU core (see DESIGN.md), so the
//! paper's 6–24-node wall-clock experiments (Figures 24, 28, 30, 31)
//! cannot exhibit real parallel speedup here. This crate models the
//! ingestion pipeline in *virtual time*: a deterministic simulation of
//! the driver loop the real `idea-core` framework executes, with a
//! [`CostModel`] whose per-record constants are **measured from the real
//! engine** by the benchmark harness (`idea-bench::calibrate`).
//!
//! The model captures exactly the effects the paper attributes its
//! results to:
//!
//! * job-activation overhead that grows with cluster size (CC dispatch
//!   per task; §7.1 "the execution overhead of invoking computing jobs
//!   increased with the cluster size");
//! * per-batch state rebuild (hash-join build over the reference data,
//!   partitioned across nodes as AsterixDB partitions its datasets);
//! * the intake bottleneck of a single intake node vs "balanced"
//!   all-node intake;
//! * broadcast index-nested-loop joins (every node probes every record,
//!   §7.4.2) vs partitioned scans (Naive Nearby Monuments) vs
//!   repartitioned hash joins;
//! * storage-write capacity.
//!
//! It is a *model*, not a measurement: EXPERIMENTS.md reports its
//! series next to the paper's and discusses where shapes agree.

pub mod model;

pub use model::{simulate, CostModel, EnrichKind, PipelineKind, SimConfig, SimResult};

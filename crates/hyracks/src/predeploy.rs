//! Parameterized predeployed jobs (paper §5.1).
//!
//! "A user can choose to predeploy a query with specified parameters.
//! This query is optimized and compiled normally, and then the compiled
//! job specification is predeployed to all nodes in the cluster ...
//! When a user wants to run this query with a particular parameter,
//! instead of repeating the entire query compilation and distribution
//! process, an invocation message with the new invocation parameter is
//! sent."
//!
//! Deployment pays the distribution cost once (one dispatch per node);
//! each invocation skips compilation and pays only activation. The
//! *compilation* cost that predeployment avoids lives in the query
//! crate's planner — the ingestion framework compiles the computing job
//! exactly once per feed and deploys it here.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use idea_adm::Value;
use parking_lot::RwLock;

use crate::cluster::Cluster;
use crate::executor::{run_job, JobHandle};
use crate::job::JobSpec;
use crate::{HyracksError, Result};

/// Handle to a predeployed job specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeployedJobId(u64);

/// CC-side cache of predeployed job specifications.
#[derive(Debug, Default)]
pub struct DeployedJobRegistry {
    jobs: RwLock<HashMap<u64, Arc<JobSpec>>>,
    next_id: AtomicU64,
    invocations: AtomicU64,
}

impl DeployedJobRegistry {
    pub fn new() -> Self {
        DeployedJobRegistry::default()
    }

    /// Number of cached specifications.
    pub fn len(&self) -> usize {
        self.jobs.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total invocations across all deployed jobs (the benchmarks derive
    /// the computing-job refresh rate from this).
    pub fn invocation_count(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }
}

impl Cluster {
    /// Distributes a compiled job spec to every node and caches it.
    /// Costs one `task_dispatch_cost` per node (the distribution
    /// messages), paid once.
    pub fn deploy_job(self: &Arc<Self>, spec: JobSpec) -> DeployedJobId {
        let dispatch = self.config().task_dispatch_cost;
        if !dispatch.is_zero() {
            // One distribution message per node.
            std::thread::sleep(dispatch * self.node_count() as u32);
        }
        let reg = self.deployed_jobs();
        let id = reg.next_id.fetch_add(1, Ordering::Relaxed);
        reg.jobs.write().insert(id, Arc::new(spec));
        DeployedJobId(id)
    }

    /// Invokes a predeployed job with a parameter; no compilation, no
    /// spec distribution — just the activation message.
    pub fn invoke_deployed(self: &Arc<Self>, id: DeployedJobId, param: Value) -> Result<JobHandle> {
        let spec = {
            let reg = self.deployed_jobs();
            reg.jobs
                .read()
                .get(&id.0)
                .cloned()
                .ok_or_else(|| HyracksError::Config(format!("no deployed job {:?}", id)))?
        };
        self.deployed_jobs().invocations.fetch_add(1, Ordering::Relaxed);
        run_job(self, &spec, param)
    }

    /// Removes a deployed job (feed shutdown).
    pub fn undeploy_job(&self, id: DeployedJobId) -> bool {
        self.deployed_jobs().jobs.write().remove(&id.0).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::ConnectorSpec;
    use crate::frame::Frame;
    use crate::job::TaskContext;
    use crate::operator::{FnSource, FrameSink, Operator};
    use parking_lot::Mutex;

    fn counting_spec(counter: Arc<Mutex<Vec<i64>>>) -> JobSpec {
        JobSpec::new("count").stage(
            "src",
            ConnectorSpec::OneToOne,
            Arc::new(move |_ctx: &TaskContext| {
                let counter = counter.clone();
                Box::new(FnSource(move |_out: &mut dyn FrameSink, ctx: &mut TaskContext| {
                    counter.lock().push(ctx.param.as_int().unwrap_or(-1));
                    Ok(())
                })) as Box<dyn Operator>
            }),
        )
    }

    #[test]
    fn deploy_invoke_repeatedly_with_params() {
        let cluster = Cluster::with_nodes(2);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let id = cluster.deploy_job(counting_spec(seen.clone()));
        for i in 0..3 {
            cluster.invoke_deployed(id, Value::Int(i)).unwrap().join().unwrap();
        }
        let mut got = seen.lock().clone();
        got.sort_unstable();
        // Two nodes × three invocations, each observing its parameter.
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(cluster.deployed_jobs().invocation_count(), 3);
    }

    #[test]
    fn invoke_unknown_job_fails() {
        let cluster = Cluster::with_nodes(1);
        let bogus = DeployedJobId(999);
        assert!(cluster.invoke_deployed(bogus, Value::Missing).is_err());
    }

    #[test]
    fn undeploy_removes() {
        let cluster = Cluster::with_nodes(1);
        let id = cluster.deploy_job(counting_spec(Arc::new(Mutex::new(Vec::new()))));
        assert!(cluster.undeploy_job(id));
        assert!(!cluster.undeploy_job(id));
        assert!(cluster.invoke_deployed(id, Value::Missing).is_err());
    }

    // Frame import used by sibling tests; keep the compiler honest.
    #[allow(dead_code)]
    fn _unused(_f: Frame) {}
}

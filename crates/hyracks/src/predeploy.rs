//! Parameterized predeployed jobs (paper §5.1).
//!
//! "A user can choose to predeploy a query with specified parameters.
//! This query is optimized and compiled normally, and then the compiled
//! job specification is predeployed to all nodes in the cluster ...
//! When a user wants to run this query with a particular parameter,
//! instead of repeating the entire query compilation and distribution
//! process, an invocation message with the new invocation parameter is
//! sent."
//!
//! Deployment pays the distribution cost once (one dispatch per node);
//! each invocation skips compilation and pays only activation. The
//! *compilation* cost that predeployment avoids lives in the query
//! crate's planner — the ingestion framework compiles the computing job
//! exactly once per feed and deploys it here.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use idea_adm::Value;
use parking_lot::RwLock;

use crate::cluster::Cluster;
use crate::executor::{run_job, JobHandle};
use crate::job::JobSpec;
use crate::pool::TaskPool;
use crate::{HyracksError, Result};

/// Handle to a predeployed job specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeployedJobId(u64);

/// One predeployed job: the cached spec plus its resident task pool.
#[derive(Debug)]
struct DeployedEntry {
    spec: Arc<JobSpec>,
    /// `None` when the spec can't materialize a pool (e.g. pinned to a
    /// dead node at deploy time): `invoke_deployed` then falls back to
    /// spawn-per-run, which surfaces the same error the old path did —
    /// deploy stays infallible.
    pool: Option<Arc<TaskPool>>,
}

/// CC-side cache of predeployed job specifications and their pools.
#[derive(Debug, Default)]
pub struct DeployedJobRegistry {
    jobs: RwLock<HashMap<u64, DeployedEntry>>,
    next_id: AtomicU64,
    invocations: AtomicU64,
    /// Live pool worker threads across all deployed jobs; decremented
    /// by each worker as it exits.
    resident_workers: Arc<AtomicUsize>,
}

impl DeployedJobRegistry {
    pub fn new() -> Self {
        DeployedJobRegistry::default()
    }

    /// Number of cached specifications.
    pub fn len(&self) -> usize {
        self.jobs.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total invocations across all deployed jobs (the benchmarks derive
    /// the computing-job refresh rate from this).
    pub fn invocation_count(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    /// Pool worker threads currently resident (parked or running)
    /// across all deployed jobs.
    pub fn resident_workers(&self) -> usize {
        self.resident_workers.load(Ordering::Acquire)
    }

    /// A clonable probe of the resident-worker count that outlives the
    /// cluster — lets tests and diagnostics verify that dropping the
    /// engine reaps every parked worker.
    pub fn resident_worker_probe(&self) -> Arc<AtomicUsize> {
        self.resident_workers.clone()
    }
}

impl Cluster {
    /// Distributes a compiled job spec to every node, caches it, and
    /// materializes its resident task pool. Costs one
    /// `task_dispatch_cost` per node (the distribution messages), paid
    /// once — re-invocations never pay it again.
    pub fn deploy_job(self: &Arc<Self>, spec: JobSpec) -> DeployedJobId {
        let dispatch = self.config().task_dispatch_cost;
        if !dispatch.is_zero() {
            // One distribution message per node.
            std::thread::sleep(dispatch * self.node_count() as u32);
        }
        let reg = self.deployed_jobs();
        let spec = Arc::new(spec);
        let pool = TaskPool::build(self, &spec, reg.resident_worker_probe()).ok().map(Arc::new);
        let id = reg.next_id.fetch_add(1, Ordering::Relaxed);
        reg.jobs.write().insert(id, DeployedEntry { spec, pool });
        DeployedJobId(id)
    }

    /// Invokes a predeployed job with a parameter; no compilation, no
    /// spec distribution, no thread spawning — just the activation
    /// message handed to the parked pool workers.
    pub fn invoke_deployed(
        self: &Arc<Self>,
        id: DeployedJobId,
        param: impl Into<Arc<Value>>,
    ) -> Result<JobHandle> {
        let (spec, pool) = {
            let reg = self.deployed_jobs();
            let jobs = reg.jobs.read();
            let entry = jobs
                .get(&id.0)
                .ok_or_else(|| HyracksError::Config(format!("no deployed job {id:?}")))?;
            (entry.spec.clone(), entry.pool.clone())
        };
        self.deployed_jobs().invocations.fetch_add(1, Ordering::Relaxed);
        let param = param.into();
        match pool {
            Some(pool) => pool.invoke(self, param),
            None => run_job(self, &spec, param),
        }
    }

    /// Removes a deployed job (feed shutdown), tearing its task pool
    /// down: workers receive a shutdown command and are joined.
    pub fn undeploy_job(&self, id: DeployedJobId) -> bool {
        let entry = self.deployed_jobs().jobs.write().remove(&id.0);
        // The entry (and with it the pool) drops here, outside the
        // registry lock, so joining parked workers can't block other
        // registry users.
        entry.is_some()
    }

    /// Removes a deployed job like [`Cluster::undeploy_job`] but keeps
    /// the worker joins off the caller's path: the registry entry is
    /// gone and shutdown commands go out before this returns (no new
    /// invocation can start, workers begin exiting immediately), while
    /// a detached reaper thread performs the joins. The feed driver
    /// uses this so pool teardown is not charged to the feed's
    /// ingestion window; `resident_workers` drains shortly after
    /// rather than by the time this returns.
    pub fn undeploy_job_deferred(&self, id: DeployedJobId) -> bool {
        let Some(entry) = self.deployed_jobs().jobs.write().remove(&id.0) else {
            return false;
        };
        if let Some(pool) = entry.pool {
            pool.begin_shutdown();
            // If the spawn fails, the closure (and the pool Arc inside
            // it) drops right here, joining the workers inline — the
            // synchronous path, just like `undeploy_job`.
            let _ = std::thread::Builder::new()
                .name(format!("{pool:?}-reaper"))
                .spawn(move || drop(pool));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::ConnectorSpec;
    use crate::frame::Frame;
    use crate::job::TaskContext;
    use crate::operator::{FnSource, FrameSink, Operator};
    use parking_lot::Mutex;

    fn counting_spec(counter: Arc<Mutex<Vec<i64>>>) -> JobSpec {
        JobSpec::new("count").stage(
            "src",
            ConnectorSpec::OneToOne,
            Arc::new(move |_ctx: &TaskContext| {
                let counter = counter.clone();
                Box::new(FnSource(move |_out: &mut dyn FrameSink, ctx: &mut TaskContext| {
                    counter.lock().push(ctx.param.as_int().unwrap_or(-1));
                    Ok(())
                })) as Box<dyn Operator>
            }),
        )
    }

    #[test]
    fn deploy_invoke_repeatedly_with_params() {
        let cluster = Cluster::with_nodes(2);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let id = cluster.deploy_job(counting_spec(seen.clone()));
        for i in 0..3 {
            cluster.invoke_deployed(id, Value::Int(i)).unwrap().join().unwrap();
        }
        let mut got = seen.lock().clone();
        got.sort_unstable();
        // Two nodes × three invocations, each observing its parameter.
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(cluster.deployed_jobs().invocation_count(), 3);
    }

    #[test]
    fn invoke_unknown_job_fails() {
        let cluster = Cluster::with_nodes(1);
        let bogus = DeployedJobId(999);
        assert!(cluster.invoke_deployed(bogus, Value::Missing).is_err());
    }

    #[test]
    fn undeploy_removes() {
        let cluster = Cluster::with_nodes(1);
        let id = cluster.deploy_job(counting_spec(Arc::new(Mutex::new(Vec::new()))));
        assert!(cluster.undeploy_job(id));
        assert!(!cluster.undeploy_job(id));
        assert!(cluster.invoke_deployed(id, Value::Missing).is_err());
    }

    // Frame import used by sibling tests; keep the compiler honest.
    #[allow(dead_code)]
    fn _unused(_f: Frame) {}
}

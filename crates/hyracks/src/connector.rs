//! Connectors: data routing strategies between consecutive stages.
//!
//! The new ingestion framework uses a Round-robin Partitioner after the
//! intake adapter ("distributing the incoming data evenly can help to
//! minimize the overall execution time of the computing job") and a Hash
//! Partitioner before storage ("partitions the enriched data records by
//! their primary keys"), paper §6.2. Broadcast is what the index
//! nested-loop join needs at scale (§7.4.2: "the Index Nested Loop Join
//! algorithm needed to broadcast the incoming tweets to all nodes").

use std::sync::Arc;

use crossbeam::channel::Sender;
use idea_adm::Value;

use crate::frame::Frame;
use crate::operator::FrameSink;
use crate::{HyracksError, Result};

/// How a stage's output is routed to the next stage's partitions.
#[derive(Clone)]
pub enum ConnectorSpec {
    /// Partition i feeds partition i (pipelined, no repartitioning).
    OneToOne,
    /// Records distributed evenly, record by record.
    RoundRobin,
    /// Records routed by a hash of the extracted key.
    HashPartition(Arc<dyn Fn(&Value) -> u64 + Send + Sync>),
    /// Every record goes to every partition.
    Broadcast,
}

impl std::fmt::Debug for ConnectorSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ConnectorSpec::OneToOne => "OneToOne",
            ConnectorSpec::RoundRobin => "RoundRobin",
            ConnectorSpec::HashPartition(_) => "HashPartition",
            ConnectorSpec::Broadcast => "Broadcast",
        })
    }
}

impl ConnectorSpec {
    /// Hash partitioner over a top-level field (e.g. the primary key).
    pub fn hash_on_field(field: &str) -> ConnectorSpec {
        let path = idea_adm::path::FieldPath::parse(field);
        ConnectorSpec::HashPartition(Arc::new(move |rec| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            path.get(rec).hash(&mut h);
            h.finish()
        }))
    }

    /// Instantiates the runtime sink for one upstream partition.
    pub(crate) fn instantiate<T: FrameTx>(
        &self,
        my_partition: usize,
        downstream: Vec<T>,
        frame_capacity: usize,
    ) -> ConnectorSink<T> {
        ConnectorSink {
            spec: self.clone(),
            downstream,
            rr_next: my_partition, // stagger round-robin start per partition
            buffers: Vec::new(),
            frame_capacity,
        }
    }
}

/// Abstraction over an inter-stage edge, so one connector implementation
/// drives both the spawn-per-run channels (plain `Sender<Frame>`) and
/// the resident task pool's control-framed channels.
pub(crate) trait FrameTx {
    fn send_frame(&self, frame: Frame) -> Result<()>;
}

impl FrameTx for Sender<Frame> {
    fn send_frame(&self, frame: Frame) -> Result<()> {
        self.send(frame).map_err(|_| HyracksError::Disconnected("connector downstream"))
    }
}

/// Runtime connector: buffers per-destination records and ships frames.
pub(crate) struct ConnectorSink<T = Sender<Frame>> {
    spec: ConnectorSpec,
    downstream: Vec<T>,
    rr_next: usize,
    buffers: Vec<Vec<Value>>,
    frame_capacity: usize,
}

impl<T: FrameTx> ConnectorSink<T> {
    fn ensure_buffers(&mut self) {
        if self.buffers.is_empty() {
            let cap = self.frame_capacity;
            self.buffers = (0..self.downstream.len()).map(|_| Vec::with_capacity(cap)).collect();
        }
    }

    fn send_to(&mut self, dest: usize, record: Value) -> Result<()> {
        self.ensure_buffers();
        self.buffers[dest].push(record);
        if self.buffers[dest].len() >= self.frame_capacity {
            // Hand the full buffer to the frame and start a pre-sized
            // replacement, so the steady state allocates one Vec per
            // shipped frame and never regrows mid-fill.
            let cap = self.frame_capacity;
            let frame = Frame::from_records(std::mem::replace(
                &mut self.buffers[dest],
                Vec::with_capacity(cap),
            ));
            self.downstream[dest].send_frame(frame)?;
        }
        Ok(())
    }

    /// Flushes buffered records as (possibly short) frames.
    pub fn flush(&mut self) -> Result<()> {
        let cap = self.frame_capacity;
        for (dest, buf) in self.buffers.iter_mut().enumerate() {
            if !buf.is_empty() {
                let frame = Frame::from_records(std::mem::replace(buf, Vec::with_capacity(cap)));
                self.downstream[dest].send_frame(frame)?;
            }
        }
        Ok(())
    }

    /// Drops buffered records without shipping them. A pooled invocation
    /// that errors mid-run clears its connector so partial output cannot
    /// leak into the next invocation.
    pub(crate) fn clear(&mut self) {
        for buf in &mut self.buffers {
            buf.clear();
        }
    }
}

impl<T: FrameTx> FrameSink for ConnectorSink<T> {
    fn push(&mut self, frame: Frame) -> Result<()> {
        let n = self.downstream.len();
        match &self.spec {
            ConnectorSpec::OneToOne => {
                // Partition-preserving: one downstream channel was
                // wired, and the frame is forwarded unchanged — no
                // record copy, the buffer travels to the consumer.
                debug_assert_eq!(n, 1, "one-to-one connector must have exactly one target");
                return self.downstream[0].send_frame(frame);
            }
            ConnectorSpec::RoundRobin => {
                for rec in frame.into_records() {
                    let dest = self.rr_next % n;
                    self.rr_next = self.rr_next.wrapping_add(1);
                    self.send_to(dest, rec)?;
                }
            }
            ConnectorSpec::HashPartition(key) => {
                let key = key.clone();
                for rec in frame.into_records() {
                    let dest = (key(&rec) % n as u64) as usize;
                    self.send_to(dest, rec)?;
                }
            }
            ConnectorSpec::Broadcast => {
                for dest in 0..n {
                    for rec in frame.records() {
                        self.send_to(dest, rec.clone())?;
                    }
                }
            }
        }
        // Forward partial buffers at input-frame boundaries: connectors
        // must not add latency beyond the producer's own framing (a slow
        // feed would otherwise stall in connector buffers).
        self.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn run(spec: ConnectorSpec, n_dest: usize, records: Vec<Value>) -> Vec<Vec<Value>> {
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..n_dest).map(|_| unbounded()).unzip();
        let mut sink = spec.instantiate(0, txs, 4);
        sink.push(Frame::from_records(records)).unwrap();
        sink.flush().unwrap();
        drop(sink);
        rxs.into_iter()
            .map(|rx| rx.try_iter().flat_map(Frame::into_records).collect())
            .collect()
    }

    #[test]
    fn round_robin_is_even() {
        let out = run(ConnectorSpec::RoundRobin, 3, (0..9).map(Value::Int).collect());
        for part in &out {
            assert_eq!(part.len(), 3);
        }
    }

    #[test]
    fn hash_partition_groups_keys() {
        let recs: Vec<Value> =
            (0..100).map(|i| Value::object([("id", Value::Int(i % 10))])).collect();
        let out = run(ConnectorSpec::hash_on_field("id"), 4, recs);
        assert_eq!(out.iter().map(Vec::len).sum::<usize>(), 100);
        // Every copy of the same key must land on the same partition.
        for key in 0..10i64 {
            let homes: Vec<usize> = out
                .iter()
                .enumerate()
                .filter(|(_, part)| {
                    part.iter().any(|r| r.as_object().unwrap().get("id") == Some(&Value::Int(key)))
                })
                .map(|(i, _)| i)
                .collect();
            assert_eq!(homes.len(), 1, "key {key} split across partitions");
        }
    }

    #[test]
    fn broadcast_duplicates_everywhere() {
        let out = run(ConnectorSpec::Broadcast, 3, (0..5).map(Value::Int).collect());
        for part in &out {
            assert_eq!(part.len(), 5);
        }
    }

    #[test]
    fn frames_cut_at_capacity() {
        let (tx, rx) = unbounded::<Frame>();
        let mut sink = ConnectorSpec::RoundRobin.instantiate(0, vec![tx], 4);
        sink.push(Frame::from_records((0..10).map(Value::Int).collect())).unwrap();
        sink.flush().unwrap();
        drop(sink);
        let sizes: Vec<usize> = rx.try_iter().map(|f| f.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }
}

//! Frames: the unit of data transfer between operators.
//!
//! "Data in a runtime Hyracks job flows in frames containing multiple
//! objects" (paper §2.2). A frame here is a batch of ADM records; the
//! byte-level framing of real Hyracks is abstracted away, but the
//! *batching* — which drives per-frame rather than per-record transfer
//! costs — is preserved.

use idea_adm::Value;

/// A batch of records moving through a pipeline.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    records: Vec<Value>,
}

impl Frame {
    /// Preferred records per frame; sources and repartitioners cut
    /// output at this size.
    pub const DEFAULT_CAPACITY: usize = 128;

    pub fn new() -> Self {
        Frame::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        Frame { records: Vec::with_capacity(n) }
    }

    pub fn from_records(records: Vec<Value>) -> Self {
        Frame { records }
    }

    pub fn push(&mut self, record: Value) {
        self.records.push(record);
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn records(&self) -> &[Value] {
        &self.records
    }

    pub fn into_records(self) -> Vec<Value> {
        self.records
    }

    /// Splits a record vector into frames of at most `cap` records.
    pub fn chunked(records: Vec<Value>, cap: usize) -> Vec<Frame> {
        let mut frames = Vec::with_capacity(records.len() / cap.max(1) + 1);
        let mut cur = Vec::with_capacity(cap.min(records.len()));
        for r in records {
            cur.push(r);
            if cur.len() >= cap {
                frames.push(Frame::from_records(std::mem::take(&mut cur)));
            }
        }
        if !cur.is_empty() {
            frames.push(Frame::from_records(cur));
        }
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking() {
        let recs: Vec<Value> = (0..10).map(Value::Int).collect();
        let frames = Frame::chunked(recs, 4);
        assert_eq!(frames.iter().map(Frame::len).collect::<Vec<_>>(), vec![4, 4, 2]);
    }

    #[test]
    fn chunking_exact_fit() {
        let recs: Vec<Value> = (0..8).map(Value::Int).collect();
        assert_eq!(Frame::chunked(recs, 4).len(), 2);
    }

    #[test]
    fn chunking_empty() {
        assert!(Frame::chunked(vec![], 4).is_empty());
    }
}

//! Push-based operators.
//!
//! "An operator reads an incoming data frame, processes the objects in
//! it, and pushes the processed data frame to another connected operator
//! through a connector" (paper §2.2).

use crate::frame::Frame;
use crate::job::TaskContext;
use crate::Result;

/// Downstream destination an operator pushes frames into (a connector at
/// runtime, or a test collector).
pub trait FrameSink {
    fn push(&mut self, frame: Frame) -> Result<()>;
}

/// A `Vec`-backed sink for tests and local materialization.
#[derive(Debug, Default)]
pub struct CollectSink {
    pub frames: Vec<Frame>,
}

impl CollectSink {
    pub fn records(self) -> Vec<idea_adm::Value> {
        self.frames.into_iter().flat_map(Frame::into_records).collect()
    }
}

impl FrameSink for CollectSink {
    fn push(&mut self, frame: Frame) -> Result<()> {
        self.frames.push(frame);
        Ok(())
    }
}

/// One operator instance, running on one partition of one stage.
///
/// Interior stages receive frames through [`Operator::next_frame`];
/// stage 0 of a job has no input and must implement
/// [`Operator::run_source`], producing frames until done (or until the
/// downstream disconnects).
pub trait Operator: Send {
    /// Called once before any data. State that must be *fresh per job
    /// invocation* — the paper's per-batch intermediate states — is
    /// built here or lazily on first frame.
    fn open(&mut self, _ctx: &mut TaskContext) -> Result<()> {
        Ok(())
    }

    /// Handles one input frame.
    fn next_frame(
        &mut self,
        frame: Frame,
        out: &mut dyn FrameSink,
        ctx: &mut TaskContext,
    ) -> Result<()>;

    /// Called once after the last frame; flush any buffered output.
    fn close(&mut self, _out: &mut dyn FrameSink, _ctx: &mut TaskContext) -> Result<()> {
        Ok(())
    }

    /// Drives a source stage (stage 0). Default: this operator is not a
    /// source.
    fn run_source(&mut self, _out: &mut dyn FrameSink, _ctx: &mut TaskContext) -> Result<()> {
        Err(crate::HyracksError::Config("operator is not a source".into()))
    }
}

/// A stateless per-frame operator from a closure — convenient for map/
/// filter stages and tests.
pub struct FnOperator<F>(pub F);

impl<F> Operator for FnOperator<F>
where
    F: FnMut(Frame, &mut dyn FrameSink, &mut TaskContext) -> Result<()> + Send,
{
    fn next_frame(
        &mut self,
        frame: Frame,
        out: &mut dyn FrameSink,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        (self.0)(frame, out, ctx)
    }
}

/// A source operator from a closure that produces all frames then
/// returns.
pub struct FnSource<F>(pub F);

impl<F> Operator for FnSource<F>
where
    F: FnMut(&mut dyn FrameSink, &mut TaskContext) -> Result<()> + Send,
{
    fn next_frame(
        &mut self,
        _frame: Frame,
        _out: &mut dyn FrameSink,
        _ctx: &mut TaskContext,
    ) -> Result<()> {
        Err(crate::HyracksError::Config("source received input".into()))
    }

    fn run_source(&mut self, out: &mut dyn FrameSink, ctx: &mut TaskContext) -> Result<()> {
        (self.0)(out, ctx)
    }
}

//! Resident task pools for predeployed jobs (paper §5.1).
//!
//! Deploying a job distributes its compiled spec once; the paper's
//! point is that each *invocation* afterwards costs only an activation
//! message. The spawn-per-run executor undercuts that: every invoke
//! spawns fresh OS threads, allocates fresh channels, and pays the
//! serial per-task dispatch again. A [`TaskPool`] makes the deployed
//! job truly resident instead — one long-lived worker thread per
//! (stage, partition) parks on a command channel between invocations,
//! and `invoke` becomes "hand the parameter to the parked workers,
//! signal go, wait for the batch barrier".
//!
//! Because the inter-stage channels persist across invocations,
//! end-of-stream is an explicit [`PoolData::Eos`] marker (one per
//! upstream task per invocation) rather than channel disconnection.
//! Every worker sends its EOS markers on *every* exit path — success,
//! operator error, or panic — so one failing task can poison only its
//! own invocation: downstream workers drain to their markers, the
//! invocation barrier resolves with the error, and the pool is
//! immediately reusable for the next batch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use idea_adm::Value;
use idea_obs::Gauge;

use crate::cluster::Cluster;
use crate::connector::{ConnectorSink, ConnectorSpec, FrameTx};
use crate::executor::{plan_assignments, ActiveTask, TerminalSink};
use crate::frame::Frame;
use crate::job::{JobSpec, OperatorFactory, TaskContext};
use crate::operator::{FrameSink, Operator};
use crate::{HyracksError, JobHandle, Result};

/// Extracts a printable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic>".into())
}

/// A condvar-backed countdown latch: `count_down` once per task,
/// waiters park until the count reaches zero. Replaces sleep-polling
/// `is_finished` loops on both executor paths.
pub(crate) struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    pub(crate) fn new(count: usize) -> Latch {
        Latch { remaining: Mutex::new(count), done: Condvar::new() }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, usize> {
        self.remaining.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn count_down(&self) {
        let mut remaining = self.lock();
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        *self.lock() == 0
    }

    pub(crate) fn wait(&self) {
        let mut remaining = self.lock();
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Waits until the count reaches zero or `timeout` elapses; returns
    /// whether it reached zero.
    pub(crate) fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut remaining = self.lock();
        while *remaining > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .done
                .wait_timeout(remaining, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            remaining = guard;
        }
        true
    }
}

/// Counts a latch down when dropped — panic-safe task accounting for
/// the spawn-per-run executor.
pub(crate) struct LatchGuard(Arc<Latch>);

impl LatchGuard {
    pub(crate) fn new(latch: Arc<Latch>) -> LatchGuard {
        LatchGuard(latch)
    }
}

impl Drop for LatchGuard {
    fn drop(&mut self) {
        self.0.count_down();
    }
}

/// The barrier for one pool invocation: every participating worker
/// reports completion (and at most one error survives); `join` on the
/// returned [`JobHandle`] waits here.
pub(crate) struct InvocationState {
    latch: Latch,
    first_err: Mutex<Option<HyracksError>>,
}

impl InvocationState {
    fn new(n_tasks: usize) -> Arc<InvocationState> {
        Arc::new(InvocationState { latch: Latch::new(n_tasks), first_err: Mutex::new(None) })
    }

    fn task_done(&self, result: Result<()>) {
        if let Err(e) = result {
            self.first_err.lock().unwrap_or_else(|p| p.into_inner()).get_or_insert(e);
        }
        self.latch.count_down();
    }

    pub(crate) fn wait(&self) -> Result<()> {
        self.latch.wait();
        match self.first_err.lock().unwrap_or_else(|p| p.into_inner()).clone() {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.latch.is_done()
    }

    pub(crate) fn wait_timeout(&self, timeout: Duration) -> bool {
        self.latch.wait_timeout(timeout)
    }
}

/// Messages on a pool's persistent inter-stage edges.
pub(crate) enum PoolData {
    Frame(Frame),
    /// One upstream task finished its part of the current invocation.
    Eos,
}

impl FrameTx for Sender<PoolData> {
    fn send_frame(&self, frame: Frame) -> Result<()> {
        self.send(PoolData::Frame(frame))
            .map_err(|_| HyracksError::Disconnected("pool stage input"))
    }
}

/// Commands on a worker's private control channel.
enum PoolCmd {
    Run { param: Arc<Value>, inv: Arc<InvocationState> },
    Shutdown,
}

struct WorkerHandle {
    cmd: Sender<PoolCmd>,
    thread: Option<JoinHandle<()>>,
}

/// Decrements the registry-wide resident-worker count when a pool
/// worker thread exits, so tests can prove no parked threads leak on
/// `undeploy_job`, `kill_node` teardown, or engine drop.
struct ResidentGuard(Arc<AtomicUsize>);

impl Drop for ResidentGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The resident runtime of one predeployed job: parked worker threads,
/// persistent channels, reusable connector buffers.
pub struct TaskPool {
    name: String,
    n_tasks: usize,
    workers: Vec<WorkerHandle>,
    /// The previous invocation's barrier. The persistent channels cannot
    /// tell two invocations' frames apart, so the next invocation is
    /// dispatched only after the previous barrier resolves. (The feed
    /// driver joins every batch anyway, making this wait free on the
    /// ingestion path.)
    prev: Mutex<Option<Arc<InvocationState>>>,
}

impl std::fmt::Debug for TaskPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaskPool({}, tasks={})", self.name, self.n_tasks)
    }
}

impl TaskPool {
    /// Materializes the pool for `spec`: plans assignments exactly like
    /// the spawn-per-run executor (so both paths reject the same specs)
    /// and spawns one parked worker per (stage, partition). Each worker
    /// pays the NC-side `task_start_latency` once, here, in parallel —
    /// it is a deployment cost, not an invocation cost.
    pub(crate) fn build(
        cluster: &Arc<Cluster>,
        spec: &JobSpec,
        resident: Arc<AtomicUsize>,
    ) -> Result<TaskPool> {
        let assignments = plan_assignments(cluster, spec)?;
        let start_latency = cluster.config().task_start_latency;
        let tasks_active: Option<Arc<Gauge>> =
            cluster.metrics().map(|m| m.gauge("hyracks/tasks_active"));

        // Persistent channels feeding each non-first stage, one per
        // partition — allocated once for the lifetime of the pool.
        let mut stage_inputs: Vec<Vec<(Sender<PoolData>, Receiver<PoolData>)>> = Vec::new();
        for nodes in assignments.iter().skip(1) {
            stage_inputs.push((0..nodes.len()).map(|_| bounded(spec.channel_capacity)).collect());
        }

        let n_tasks: usize = assignments.iter().map(Vec::len).sum();
        let job_name: Arc<str> = Arc::from(spec.name.as_str());
        let mut workers: Vec<WorkerHandle> = Vec::with_capacity(n_tasks);

        for (s, stage) in spec.stages.iter().enumerate() {
            let nodes = &assignments[s];
            for (p, &node) in nodes.iter().enumerate() {
                let input = if s == 0 { None } else { Some(stage_inputs[s - 1][p].1.clone()) };
                // One EOS is expected per upstream task that feeds this
                // partition: with OneToOne only upstream partition p
                // does; every other connector fans out to all.
                let expected_eos = if s == 0 {
                    0
                } else {
                    match spec.stages[s - 1].connector {
                        ConnectorSpec::OneToOne => 1,
                        _ => assignments[s - 1].len(),
                    }
                };
                let (sink, eos_txs) = if s + 1 == spec.stages.len() {
                    (None, Vec::new())
                } else {
                    let downstream: Vec<Sender<PoolData>> = match stage.connector {
                        ConnectorSpec::OneToOne => vec![stage_inputs[s][p].0.clone()],
                        _ => stage_inputs[s].iter().map(|(tx, _)| tx.clone()).collect(),
                    };
                    let sink =
                        stage.connector.instantiate(p, downstream.clone(), spec.frame_capacity);
                    (Some(sink), downstream)
                };
                let (cmd_tx, cmd_rx) = unbounded();
                let mut worker = PoolWorker {
                    job_name: job_name.clone(),
                    stage: s,
                    partition: p,
                    partitions: nodes.len(),
                    node,
                    // Weak, or the registry entry would keep the cluster
                    // alive through its own pool and nothing could ever
                    // be dropped.
                    cluster: Arc::downgrade(cluster),
                    factory: stage.factory.clone(),
                    input,
                    expected_eos,
                    eos_seen: 0,
                    sink,
                    eos_txs,
                    tasks_active: tasks_active.clone(),
                };
                resident.fetch_add(1, Ordering::AcqRel);
                // If spawn fails the unsent closure is dropped and the
                // guard inside it undoes this increment.
                let resident_guard = ResidentGuard(resident.clone());
                let spawned = std::thread::Builder::new()
                    .name(format!("{}@pool/{}/{p}", spec.name, stage.name))
                    .spawn(move || {
                        let _resident = resident_guard;
                        if !start_latency.is_zero() {
                            std::thread::sleep(start_latency);
                        }
                        worker.park_loop(&cmd_rx);
                    });
                match spawned {
                    Ok(thread) => workers.push(WorkerHandle { cmd: cmd_tx, thread: Some(thread) }),
                    Err(e) => {
                        // Tear down the workers already parked.
                        let mut partial = TaskPool {
                            name: spec.name.clone(),
                            n_tasks: workers.len(),
                            workers,
                            prev: Mutex::new(None),
                        };
                        partial.shutdown();
                        return Err(HyracksError::Config(format!("spawn failed: {e}")));
                    }
                }
            }
        }
        drop(stage_inputs);

        Ok(TaskPool { name: spec.name.clone(), n_tasks, workers, prev: Mutex::new(None) })
    }

    /// Worker threads in this pool.
    pub fn workers(&self) -> usize {
        self.n_tasks
    }

    /// Runs one invocation on the parked workers. The whole activation
    /// costs one `task_dispatch_cost` — the invocation message of the
    /// paper — regardless of task count; compare the per-task serial
    /// dispatch the spawn-per-run path pays.
    pub(crate) fn invoke(&self, cluster: &Arc<Cluster>, param: Arc<Value>) -> Result<JobHandle> {
        let dispatch = cluster.config().task_dispatch_cost;
        if !dispatch.is_zero() {
            std::thread::sleep(dispatch);
        }
        let mut prev = self.prev.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(previous) = prev.take() {
            previous.latch.wait();
        }
        cluster.record_job_start();
        let inv = InvocationState::new(self.n_tasks);
        for w in &self.workers {
            if w.cmd.send(PoolCmd::Run { param: param.clone(), inv: inv.clone() }).is_err() {
                return Err(HyracksError::Config(format!(
                    "task pool for '{}' is shut down",
                    self.name
                )));
            }
        }
        *prev = Some(inv.clone());
        Ok(JobHandle::pooled(self.name.clone(), inv))
    }

    /// Sends the shutdown command to every worker without joining them;
    /// the workers begin exiting immediately while the joins happen in a
    /// later [`shutdown`](Self::shutdown) (usually via `Drop`). Safe to
    /// call more than once: a worker that already exited has dropped its
    /// command receiver, and sends to disconnected channels are
    /// discarded.
    pub(crate) fn begin_shutdown(&self) {
        for w in &self.workers {
            let _ = w.cmd.send(PoolCmd::Shutdown);
        }
    }

    fn shutdown(&mut self) {
        for w in &self.workers {
            let _ = w.cmd.send(PoolCmd::Shutdown);
        }
        let me = std::thread::current().id();
        for w in &mut self.workers {
            if let Some(t) = w.thread.take() {
                if t.thread().id() == me {
                    // Tear-down is running *on* a pool worker: the last
                    // Arc<Cluster> died inside an invocation. The worker
                    // exits on the Shutdown it just received; joining
                    // ourselves would deadlock.
                    continue;
                }
                let _ = t.join();
            }
        }
        self.workers.clear();
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Thread-local state of one resident worker.
struct PoolWorker {
    job_name: Arc<str>,
    stage: usize,
    partition: usize,
    partitions: usize,
    node: usize,
    cluster: Weak<Cluster>,
    factory: OperatorFactory,
    input: Option<Receiver<PoolData>>,
    expected_eos: usize,
    /// EOS markers consumed so far in the *current* invocation; reset
    /// at every `Run`.
    eos_seen: usize,
    /// Persistent connector (downstream buffers reused across
    /// invocations); `None` on the terminal stage.
    sink: Option<ConnectorSink<Sender<PoolData>>>,
    /// Separate handles on the downstream edges for the EOS markers the
    /// connector abstraction doesn't know about.
    eos_txs: Vec<Sender<PoolData>>,
    tasks_active: Option<Arc<Gauge>>,
}

impl PoolWorker {
    fn park_loop(&mut self, cmd_rx: &Receiver<PoolCmd>) {
        while let Ok(cmd) = cmd_rx.recv() {
            match cmd {
                PoolCmd::Run { param, inv } => {
                    let result = self.run_invocation(param);
                    inv.task_done(result);
                }
                PoolCmd::Shutdown => {
                    // Fail invocations queued behind the shutdown marker
                    // so their barriers resolve instead of hanging.
                    while let Ok(PoolCmd::Run { inv, .. }) = cmd_rx.try_recv() {
                        inv.task_done(Err(HyracksError::Config("task pool shut down".into())));
                    }
                    break;
                }
            }
        }
    }

    fn run_invocation(&mut self, param: Arc<Value>) -> Result<()> {
        self.eos_seen = 0;
        let result = match self.cluster.upgrade() {
            None => Err(HyracksError::Config("cluster dropped while task pool resident".into())),
            Some(cluster) => {
                if !cluster.node(self.node).is_alive() {
                    Err(HyracksError::NodeDown(self.node))
                } else {
                    let _active = self.tasks_active.clone().map(ActiveTask::enter);
                    let mut ctx = TaskContext {
                        job_name: self.job_name.clone(),
                        stage: self.stage,
                        partition: self.partition,
                        partitions: self.partitions,
                        node: self.node,
                        cluster,
                        param,
                    };
                    // A panicking operator must not kill the resident
                    // worker — it becomes this invocation's error.
                    match catch_unwind(AssertUnwindSafe(|| self.run_operator(&mut ctx))) {
                        Ok(r) => r,
                        Err(p) => Err(HyracksError::TaskPanic(panic_message(&*p))),
                    }
                }
            }
        };
        if result.is_err() {
            // Keep the pool consistent for the next invocation: swallow
            // the rest of this invocation's input and drop any partial
            // output still buffered in the connector.
            self.drain_input();
            if let Some(sink) = &mut self.sink {
                sink.clear();
            }
        }
        // EOS goes out on *every* exit path, so neither downstream
        // workers nor the invocation barrier can wedge on a missing
        // marker. (Send failure means the pool is tearing down.)
        for tx in &self.eos_txs {
            let _ = tx.send(PoolData::Eos);
        }
        result
    }

    fn run_operator(&mut self, ctx: &mut TaskContext) -> Result<()> {
        let mut op = (self.factory)(ctx);
        op.open(ctx)?;
        match &mut self.sink {
            None => {
                let mut sink = TerminalSink;
                pump(
                    self.input.as_ref(),
                    self.expected_eos,
                    &mut self.eos_seen,
                    &mut *op,
                    &mut sink,
                    ctx,
                )?;
                op.close(&mut sink, ctx)
            }
            Some(sink) => {
                pump(
                    self.input.as_ref(),
                    self.expected_eos,
                    &mut self.eos_seen,
                    &mut *op,
                    sink,
                    ctx,
                )?;
                op.close(sink, ctx)?;
                sink.flush()
            }
        }
    }

    /// Consumes the current invocation's remaining input up to its EOS
    /// markers, discarding frames — the error path's way of leaving the
    /// persistent channels empty for the next invocation.
    fn drain_input(&mut self) {
        let Some(rx) = &self.input else { return };
        while self.eos_seen < self.expected_eos {
            match rx.recv() {
                Ok(PoolData::Eos) => self.eos_seen += 1,
                Ok(PoolData::Frame(_)) => {}
                Err(_) => break,
            }
        }
    }
}

/// Feeds the operator until this invocation's EOS markers have all
/// arrived (or runs it as a source on the first stage).
fn pump(
    input: Option<&Receiver<PoolData>>,
    expected_eos: usize,
    eos_seen: &mut usize,
    op: &mut dyn Operator,
    sink: &mut dyn FrameSink,
    ctx: &mut TaskContext,
) -> Result<()> {
    let Some(rx) = input else {
        return op.run_source(sink, ctx);
    };
    while *eos_seen < expected_eos {
        match rx.recv() {
            Ok(PoolData::Frame(frame)) => {
                // A task on a dead node stops at the next frame boundary
                // instead of silently continuing to compute.
                if !ctx.cluster.node(ctx.node).is_alive() {
                    return Err(HyracksError::NodeDown(ctx.node));
                }
                op.next_frame(frame, sink, ctx)?;
            }
            Ok(PoolData::Eos) => *eos_seen += 1,
            Err(_) => return Err(HyracksError::Disconnected("pool stage input")),
        }
    }
    Ok(())
}

//! The simulated AsterixDB cluster.
//!
//! "In an AsterixDB cluster, one (and only one) node runs the Cluster
//! Controller (CC) ... All worker nodes run a Node Controller (NC)"
//! (paper §6.1). Here a node is a logical execution site: it owns a
//! partition-holder manager and hosts one task per job stage. Tasks are
//! OS threads; the network is bounded channels. Two configurable costs
//! model the control-plane overhead that the paper's experiments expose
//! (job activation grows with cluster size, §7.1/§7.4):
//!
//! * [`ClusterConfig::task_dispatch_cost`] — serial CC-side cost per
//!   task when a job starts (sending the activation message);
//! * [`ClusterConfig::task_start_latency`] — parallel NC-side latency
//!   before a task begins (message delivery + task setup).
//!
//! Both default to zero so unit tests measure pure dataflow.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use idea_obs::MetricsRegistry;
use parking_lot::RwLock;

use crate::holder::PartitionHolderManager;
use crate::predeploy::DeployedJobRegistry;

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (NCs).
    pub nodes: usize,
    /// Serial, CC-side cost to dispatch one task at job start.
    pub task_dispatch_cost: Duration,
    /// Parallel, NC-side latency before a dispatched task starts running.
    pub task_start_latency: Duration,
    /// Default bounded capacity (frames) for inter-stage channels.
    pub channel_capacity: usize,
}

impl ClusterConfig {
    pub fn with_nodes(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            task_dispatch_cost: Duration::ZERO,
            task_start_latency: Duration::ZERO,
            channel_capacity: 16,
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::with_nodes(1)
    }
}

/// One worker node: its id, its partition-holder manager, and whether
/// its NC is currently alive.
#[derive(Debug)]
pub struct Node {
    id: usize,
    holders: PartitionHolderManager,
    alive: AtomicBool,
}

impl Node {
    pub fn id(&self) -> usize {
        self.id
    }

    pub fn holders(&self) -> &PartitionHolderManager {
        &self.holders
    }

    /// Whether this node's NC is up. Tasks already running on a dead
    /// node stop at their next frame boundary; new jobs avoid it.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }
}

/// The cluster: N nodes plus CC-side state (deployed-job registry, job
/// id counter).
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    nodes: Vec<Node>,
    deployed: DeployedJobRegistry,
    job_counter: AtomicU64,
    jobs_started: AtomicU64,
    metrics: RwLock<Option<Arc<MetricsRegistry>>>,
}

impl Cluster {
    pub fn new(config: ClusterConfig) -> Arc<Cluster> {
        assert!(config.nodes > 0, "cluster needs at least one node");
        let nodes = (0..config.nodes)
            .map(|id| Node {
                id,
                holders: PartitionHolderManager::new(),
                alive: AtomicBool::new(true),
            })
            .collect();
        Arc::new(Cluster {
            config,
            nodes,
            deployed: DeployedJobRegistry::new(),
            job_counter: AtomicU64::new(0),
            jobs_started: AtomicU64::new(0),
            metrics: RwLock::new(None),
        })
    }

    /// Convenience: an N-node cluster with default (zero-cost) control
    /// plane.
    pub fn with_nodes(n: usize) -> Arc<Cluster> {
        Cluster::new(ClusterConfig::with_nodes(n))
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node ids whose NC is currently alive.
    pub fn alive_nodes(&self) -> Vec<usize> {
        self.nodes.iter().filter(|n| n.is_alive()).map(|n| n.id).collect()
    }

    /// Node ids whose NC is down.
    pub fn dead_nodes(&self) -> Vec<usize> {
        self.nodes.iter().filter(|n| !n.is_alive()).map(|n| n.id).collect()
    }

    /// Simulates an NC crash: the node stops accepting tasks, every
    /// partition holder it hosts fails (waking any task blocked on
    /// one), and tasks running on it stop at their next frame boundary.
    /// Idempotent; killing an already-dead node is a no-op.
    pub fn kill_node(&self, id: usize) {
        let node = &self.nodes[id];
        if node.alive.swap(false, Ordering::AcqRel) {
            node.holders.fail_all();
            if let Some(m) = self.metrics.read().as_ref() {
                m.counter("hyracks/node_kills").inc();
            }
        }
    }

    /// Brings a dead NC back (a node rejoining the cluster). Holders it
    /// hosted stay failed — feeds re-register fresh holders when they
    /// restart.
    pub fn restore_node(&self, id: usize) {
        self.nodes[id].alive.store(true, Ordering::Release);
    }

    /// The CC's registry of predeployed job specifications.
    pub fn deployed_jobs(&self) -> &DeployedJobRegistry {
        &self.deployed
    }

    pub(crate) fn next_job_instance(&self) -> u64 {
        self.job_counter.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn record_job_start(&self) {
        self.jobs_started.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.read().as_ref() {
            m.counter("hyracks/jobs_started").inc();
        }
    }

    /// Number of job executions started on this cluster (intake +
    /// computing + storage jobs all count; benchmarks report the
    /// computing-job refresh rate from this).
    pub fn jobs_started(&self) -> u64 {
        self.jobs_started.load(Ordering::Relaxed)
    }

    /// Attaches a metrics registry. Afterwards the executor also
    /// reports `hyracks/jobs_started` and a `hyracks/tasks_active`
    /// gauge through it. Attaching replaces any previous registry.
    pub fn attach_metrics(&self, registry: Arc<MetricsRegistry>) {
        *self.metrics.write() = Some(registry);
    }

    /// The attached registry, if any.
    pub fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.metrics.read().clone()
    }
}

//! Job specifications: what a compiled query/pipeline looks like before
//! it runs.
//!
//! "A job specification describes how data flows and is processed in a
//! job. It contains a DAG of operators ... and connectors" (paper §2.2).
//! The ingestion pipelines of the paper are linear DAGs (adapter →
//! partitioner → holder; collector → UDF → sink; holder → partitioner →
//! storage), so a [`JobSpec`] is a list of [`StageSpec`]s, each
//! instantiated once per assigned node, joined by connectors.

use std::sync::Arc;

use idea_adm::Value;

use crate::cluster::Cluster;
use crate::connector::ConnectorSpec;
use crate::operator::Operator;

/// Factory producing one operator instance per task. Factories must be
/// shareable across threads and reusable across invocations (predeployed
/// jobs instantiate the same spec many times).
pub type OperatorFactory = Arc<dyn Fn(&TaskContext) -> Box<dyn Operator> + Send + Sync>;

/// One pipeline stage.
#[derive(Clone)]
pub struct StageSpec {
    pub name: String,
    pub factory: OperatorFactory,
    /// Routing of this stage's output to the next stage. Ignored for the
    /// last stage (whose operators consume or store their input).
    pub connector: ConnectorSpec,
    /// Nodes this stage runs on; `None` = every cluster node. The paper's
    /// unbalanced intake runs its adapter on a single node ("a user may
    /// choose to activate the Adapter on one or more nodes").
    pub nodes: Option<Vec<usize>>,
}

impl std::fmt::Debug for StageSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageSpec")
            .field("name", &self.name)
            .field("connector", &self.connector)
            .field("nodes", &self.nodes)
            .finish()
    }
}

/// A compiled job: a named pipeline of stages.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub name: String,
    pub stages: Vec<StageSpec>,
    /// Bounded capacity (in frames) of inter-stage channels.
    pub channel_capacity: usize,
    /// Records per frame cut by connectors.
    pub frame_capacity: usize,
}

impl JobSpec {
    pub fn new(name: impl Into<String>) -> Self {
        JobSpec {
            name: name.into(),
            stages: Vec::new(),
            channel_capacity: 16,
            frame_capacity: crate::frame::Frame::DEFAULT_CAPACITY,
        }
    }

    /// Appends a stage running on every node.
    pub fn stage(
        mut self,
        name: impl Into<String>,
        connector: ConnectorSpec,
        factory: OperatorFactory,
    ) -> Self {
        self.stages
            .push(StageSpec { name: name.into(), factory, connector, nodes: None });
        self
    }

    /// Appends a stage pinned to specific nodes.
    pub fn stage_on(
        mut self,
        name: impl Into<String>,
        nodes: Vec<usize>,
        connector: ConnectorSpec,
        factory: OperatorFactory,
    ) -> Self {
        self.stages
            .push(StageSpec { name: name.into(), factory, connector, nodes: Some(nodes) });
        self
    }

    /// Node list for stage `s` on a cluster of `n` nodes.
    pub fn stage_nodes(&self, s: usize, n: usize) -> Vec<usize> {
        self.stages[s].nodes.clone().unwrap_or_else(|| (0..n).collect())
    }
}

/// Per-task execution context handed to operator factories and methods.
#[derive(Clone)]
pub struct TaskContext {
    /// Name of the running job (diagnostics).
    pub job_name: Arc<str>,
    /// Stage index within the job.
    pub stage: usize,
    /// This task's partition index within the stage.
    pub partition: usize,
    /// Total partitions in this stage.
    pub partitions: usize,
    /// Cluster node hosting this task.
    pub node: usize,
    /// The hosting cluster (for partition-holder lookup etc.).
    pub cluster: Arc<Cluster>,
    /// Invocation parameter of a parameterized predeployed job
    /// (`Value::Missing` when the job was started without parameters).
    pub param: Arc<Value>,
}

impl std::fmt::Debug for TaskContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TaskContext({} stage {} partition {}/{} node {})",
            self.job_name, self.stage, self.partition, self.partitions, self.node
        )
    }
}

//! Runtime error type.

use std::fmt;

/// Errors surfaced by job execution.
#[derive(Debug, Clone, PartialEq)]
pub enum HyracksError {
    /// A downstream stage hung up; the pipeline is shutting down.
    Disconnected(&'static str),
    /// An operator failed; carries the operator/stage description.
    Operator(String),
    /// Job/holder wiring mistakes (unknown holder, bad stage count, ...).
    Config(String),
    /// A task thread panicked.
    TaskPanic(String),
    /// The node hosting a task (or pinned in a job spec) is dead.
    NodeDown(usize),
}

impl fmt::Display for HyracksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HyracksError::Disconnected(w) => write!(f, "channel disconnected: {w}"),
            HyracksError::Operator(m) => write!(f, "operator error: {m}"),
            HyracksError::Config(m) => write!(f, "job configuration error: {m}"),
            HyracksError::TaskPanic(m) => write!(f, "task panicked: {m}"),
            HyracksError::NodeDown(n) => write!(f, "node {n} is down"),
        }
    }
}

impl std::error::Error for HyracksError {}

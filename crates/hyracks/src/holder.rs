//! Partition holders (paper §5.3).
//!
//! "A partition holder operator 'guards' a runtime partition by holding
//! the incoming data frames in a queue with a limited size." Two kinds:
//!
//! * **passive** — receives frames from its own job's upstream operators
//!   and *waits for other jobs to pull them* (the intake job's tail; the
//!   computing job pulls batches from it);
//! * **active** — receives frames pushed *by other jobs* and pushes them
//!   on to its own downstream operators (the storage job's head).
//!
//! Both are a bounded queue plus a registration in the node-local
//! [`PartitionHolderManager`]; the mode records the discipline the
//! owning job uses.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use idea_adm::Value;
use idea_obs::{Counter, MetricsScope};
use parking_lot::RwLock;

use crate::frame::Frame;
use crate::{HyracksError, Result};

/// Push/pull discipline of a holder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HolderMode {
    Active,
    Passive,
}

enum HolderMsg {
    Frame(Frame),
    Eof,
}

/// A batch of records pulled from a holder, with an explicit marker for
/// whether the feed's EOF record was reached while collecting it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Batch {
    pub records: Vec<Value>,
    pub eof: bool,
}

impl Batch {
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn into_records(self) -> Vec<Value> {
        self.records
    }
}

/// Contention instruments attached by the observability layer: how
/// often producers found the queue full and consumers found it empty.
#[derive(Debug, Clone)]
struct HolderObs {
    blocked_pushes: Arc<Counter>,
    blocked_pulls: Arc<Counter>,
}

/// Queue contents guarded by [`HolderQueue::state`]. `poisoned` is
/// mirrored from the holder's atomic so blocked waiters re-check it
/// without releasing the lock.
#[derive(Default)]
struct QueueState {
    queue: VecDeque<HolderMsg>,
    poisoned: bool,
}

/// Condvar-guarded bounded queue. Producers park on `not_full`,
/// consumers on `not_empty`; [`PartitionHolder::fail`] wakes both sides
/// under the lock, so nobody can sleep through a node death and no
/// sleep-polling is needed anywhere on the frame path.
struct HolderQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl HolderQueue {
    fn new(capacity: usize) -> Self {
        HolderQueue {
            state: Mutex::new(QueueState::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }
}

/// A guarded, bounded frame queue shared between jobs.
pub struct PartitionHolder {
    name: String,
    mode: HolderMode,
    q: HolderQueue,
    eof_seen: AtomicBool,
    /// Whether EOF has been *pushed* into this holder — lets the feed
    /// supervisor tell a clean producer shutdown from a producer that
    /// died without closing its holder.
    eof_pushed: AtomicBool,
    /// Set by [`fail`](Self::fail) when the hosting node dies: pushes
    /// error out, pulls drain to EOF, `drained()` is satisfied.
    poisoned: AtomicBool,
    /// Records successfully enqueued / records handed to consumers.
    /// The checkpoint protocol compares these across stage boundaries
    /// to prove the pipeline is quiescent.
    received: AtomicU64,
    taken: AtomicU64,
    /// Records pulled off a frame but beyond a batch boundary; consumed
    /// first by the next pull so batch sizes stay exact regardless of
    /// frame size.
    leftover: parking_lot::Mutex<std::collections::VecDeque<Value>>,
    obs: RwLock<Option<HolderObs>>,
}

impl std::fmt::Debug for PartitionHolder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PartitionHolder({}, {:?}, queued={})", self.name, self.mode, self.queued())
    }
}

impl PartitionHolder {
    fn new(name: String, mode: HolderMode, capacity: usize) -> Self {
        PartitionHolder {
            name,
            mode,
            q: HolderQueue::new(capacity),
            eof_seen: AtomicBool::new(false),
            eof_pushed: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            received: AtomicU64::new(0),
            taken: AtomicU64::new(0),
            leftover: parking_lot::Mutex::new(std::collections::VecDeque::new()),
            obs: RwLock::new(None),
        }
    }

    /// Wires this holder into a metrics scope: a `queue_depth` probe
    /// (sampled at snapshot time) plus `blocked_pushes`/`blocked_pulls`
    /// counters for producer back-pressure and consumer starvation.
    pub fn attach_obs(self: &Arc<Self>, scope: &MetricsScope) {
        let me = Arc::downgrade(self);
        scope.probe("queue_depth", move || me.upgrade().map_or(0, |h| h.queued() as i64));
        *self.obs.write() = Some(HolderObs {
            blocked_pushes: scope.counter("blocked_pushes"),
            blocked_pulls: scope.counter("blocked_pulls"),
        });
    }

    fn note_blocked_push(&self) {
        if let Some(obs) = &*self.obs.read() {
            obs.blocked_pushes.inc();
        }
    }

    fn note_blocked_pull(&self) {
        if let Some(obs) = &*self.obs.read() {
            obs.blocked_pulls.inc();
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn mode(&self) -> HolderMode {
        self.mode
    }

    /// Frames currently queued.
    pub fn queued(&self) -> usize {
        self.lock_state().queue.len()
    }

    /// Locks the queue state; a waiter that panicked mid-update cannot
    /// leave the queue in a half-written state (every mutation below is
    /// a single `VecDeque` call), so a poisoned lock is recoverable.
    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        self.q.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocking pop. Never returns "disconnected": the holder owns its
    /// queue, and `fail()` plants an EOF, so a parked consumer always
    /// wakes to a message.
    fn pop_blocking(&self) -> HolderMsg {
        let mut st = self.lock_state();
        if st.queue.is_empty() {
            self.note_blocked_pull();
        }
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.q.not_full.notify_one();
                return msg;
            }
            st = self.q.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn try_pop(&self) -> Option<HolderMsg> {
        let msg = self.lock_state().queue.pop_front();
        if msg.is_some() {
            self.q.not_full.notify_one();
        }
        msg
    }

    /// Enqueues a frame, blocking while the queue is full (back-pressure
    /// toward the producer, as with a size-limited queue in the paper).
    /// The wait is a condvar park — `fail()` takes the same lock and
    /// wakes us, so a producer blocked here observes a node death
    /// immediately instead of discovering it on a poll tick.
    pub fn push_frame(&self, frame: Frame) -> Result<()> {
        if self.poisoned() {
            return Err(HyracksError::Disconnected("failed partition holder"));
        }
        let n = frame.len() as u64;
        let mut st = self.lock_state();
        let mut blocked = false;
        while !st.poisoned && st.queue.len() >= self.q.capacity {
            // Count once per push so the counter reflects how often
            // back-pressure engaged, not how long.
            if !blocked {
                self.note_blocked_push();
                blocked = true;
            }
            st = self.q.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.poisoned {
            return Err(HyracksError::Disconnected("failed partition holder"));
        }
        st.queue.push_back(HolderMsg::Frame(frame));
        drop(st);
        self.received.fetch_add(n, Ordering::AcqRel);
        self.q.not_empty.notify_one();
        Ok(())
    }

    /// Marks end-of-feed: the special "EOF" record of §6.1. Consumers
    /// finish their current batch without waiting for it to fill. The
    /// marker may exceed the capacity bound by one entry — a full
    /// holder must never wedge its producer's shutdown path.
    pub fn push_eof(&self) -> Result<()> {
        self.eof_pushed.store(true, Ordering::Release);
        let mut st = self.lock_state();
        if st.poisoned {
            // fail() already delivered an EOF to the consumer.
            return Ok(());
        }
        st.queue.push_back(HolderMsg::Eof);
        drop(st);
        self.q.not_empty.notify_one();
        Ok(())
    }

    /// Whether EOF has been *consumed* from this holder.
    pub fn eof_seen(&self) -> bool {
        self.eof_seen.load(Ordering::Acquire)
    }

    /// Whether a producer has *pushed* EOF (or the holder was failed).
    pub fn eof_pushed(&self) -> bool {
        self.eof_pushed.load(Ordering::Acquire)
    }

    /// Whether the holder has been failed by [`fail`](Self::fail).
    pub fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Records successfully enqueued so far.
    pub fn received(&self) -> u64 {
        self.received.load(Ordering::Acquire)
    }

    /// Records handed to consumers so far.
    pub fn taken(&self) -> u64 {
        self.taken.load(Ordering::Acquire)
    }

    /// Fails the holder: the hosting node died. Idempotent. Queued
    /// frames are discarded (unblocking any producer stuck in
    /// back-pressure — its next push errors), and a single EOF marker
    /// is delivered so a consumer blocked in `pull_*` wakes up.
    pub fn fail(&self) {
        if self.poisoned.swap(true, Ordering::AcqRel) {
            return;
        }
        // Under the queue lock there is no race with blocked producers:
        // they re-check `poisoned` before enqueueing, so the EOF we
        // plant here stays the terminal message.
        let mut st = self.lock_state();
        st.poisoned = true;
        st.queue.clear();
        st.queue.push_back(HolderMsg::Eof);
        drop(st);
        self.q.not_empty.notify_all();
        self.q.not_full.notify_all();
    }

    /// Pulls one frame, blocking; `None` means EOF.
    pub fn pull_frame(&self) -> Result<Option<Frame>> {
        if self.eof_seen() {
            return Ok(None);
        }
        match self.pop_blocking() {
            HolderMsg::Frame(f) => {
                self.taken.fetch_add(f.len() as u64, Ordering::AcqRel);
                Ok(Some(f))
            }
            HolderMsg::Eof => {
                self.eof_seen.store(true, Ordering::Release);
                Ok(None)
            }
        }
    }

    /// Pulls records until `max_records` are collected or EOF arrives.
    /// This is how a computing job collects its parameter batch from
    /// the intake job; `Batch::eof` tells the driver whether this was
    /// the feed's last batch.
    pub fn pull_batch(&self, max_records: usize) -> Result<Batch> {
        let mut out = Vec::with_capacity(max_records.min(4096));
        {
            let mut leftover = self.leftover.lock();
            while out.len() < max_records {
                match leftover.pop_front() {
                    Some(r) => out.push(r),
                    None => break,
                }
            }
        }
        if out.len() >= max_records {
            self.taken.fetch_add(out.len() as u64, Ordering::AcqRel);
            return Ok(Batch { records: out, eof: self.eof_seen() });
        }
        if self.eof_seen() {
            self.taken.fetch_add(out.len() as u64, Ordering::AcqRel);
            return Ok(Batch { records: out, eof: true });
        }
        while out.len() < max_records {
            match self.pop_blocking() {
                HolderMsg::Frame(f) => {
                    let mut records = f.into_records().into_iter();
                    while out.len() < max_records {
                        match records.next() {
                            Some(r) => out.push(r),
                            None => break,
                        }
                    }
                    // Stash anything beyond the batch boundary.
                    let mut leftover = self.leftover.lock();
                    leftover.extend(records);
                }
                HolderMsg::Eof => {
                    self.eof_seen.store(true, Ordering::Release);
                    self.taken.fetch_add(out.len() as u64, Ordering::AcqRel);
                    return Ok(Batch { records: out, eof: true });
                }
            }
        }
        self.taken.fetch_add(out.len() as u64, Ordering::AcqRel);
        Ok(Batch { records: out, eof: false })
    }

    /// Non-blocking variant of [`pull_batch`](Self::pull_batch): takes
    /// whatever is immediately available (up to `max_records`) without
    /// waiting for the batch to fill. The checkpoint drain uses this so
    /// a computing invocation issued while the adapters are paused
    /// cannot block on a quiet intake holder.
    pub fn try_pull_batch(&self, max_records: usize) -> Result<Batch> {
        let mut out = Vec::new();
        {
            let mut leftover = self.leftover.lock();
            while out.len() < max_records {
                match leftover.pop_front() {
                    Some(r) => out.push(r),
                    None => break,
                }
            }
        }
        while out.len() < max_records {
            match self.try_pop() {
                Some(HolderMsg::Frame(f)) => {
                    let mut records = f.into_records().into_iter();
                    while out.len() < max_records {
                        match records.next() {
                            Some(r) => out.push(r),
                            None => break,
                        }
                    }
                    let mut leftover = self.leftover.lock();
                    leftover.extend(records);
                }
                Some(HolderMsg::Eof) => {
                    self.eof_seen.store(true, Ordering::Release);
                    break;
                }
                None => break,
            }
        }
        self.taken.fetch_add(out.len() as u64, Ordering::AcqRel);
        Ok(Batch { records: out, eof: self.eof_seen() })
    }

    /// Whether EOF has been consumed and no records remain (queued or
    /// leftover) — the feed driver's stop condition. A failed holder is
    /// always drained (its contents are gone).
    pub fn drained(&self) -> bool {
        self.poisoned()
            || (self.eof_seen()
                && self.lock_state().queue.is_empty()
                && self.leftover.lock().is_empty())
    }

    /// Non-blocking drain used by tests and shutdown paths; `eof` in
    /// the returned [`Batch`] reports whether the EOF marker has been
    /// consumed (now or earlier).
    pub fn try_pull_all(&self) -> Batch {
        let mut out: Vec<Value> = self.leftover.lock().drain(..).collect();
        while let Some(msg) = self.try_pop() {
            match msg {
                HolderMsg::Frame(f) => out.extend(f.into_records()),
                HolderMsg::Eof => {
                    self.eof_seen.store(true, Ordering::Release);
                    break;
                }
            }
        }
        self.taken.fetch_add(out.len() as u64, Ordering::AcqRel);
        Batch { records: out, eof: self.eof_seen() }
    }
}

/// Node-local registry: "when a new partition holder is created, it
/// registers with the local partition holder manager" (§5.3).
#[derive(Debug, Default)]
pub struct PartitionHolderManager {
    holders: RwLock<HashMap<String, Arc<PartitionHolder>>>,
}

impl PartitionHolderManager {
    pub fn new() -> Self {
        PartitionHolderManager::default()
    }

    /// Creates and registers a holder. Re-registering a live name is a
    /// configuration error.
    pub fn register(
        &self,
        name: impl Into<String>,
        mode: HolderMode,
        capacity: usize,
    ) -> Result<Arc<PartitionHolder>> {
        let name = name.into();
        let mut map = self.holders.write();
        if map.contains_key(&name) {
            return Err(HyracksError::Config(format!("holder '{name}' already registered")));
        }
        let holder = Arc::new(PartitionHolder::new(name.clone(), mode, capacity));
        map.insert(name, holder.clone());
        Ok(holder)
    }

    /// Finds a registered holder.
    pub fn lookup(&self, name: &str) -> Result<Arc<PartitionHolder>> {
        self.holders
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| HyracksError::Config(format!("no holder named '{name}'")))
    }

    /// Drops a holder registration (feed shutdown).
    pub fn unregister(&self, name: &str) -> Option<Arc<PartitionHolder>> {
        self.holders.write().remove(name)
    }

    /// Fails every registered holder — the node died. Tasks blocked on
    /// any of this node's holders wake up and error out.
    pub fn fail_all(&self) {
        for holder in self.holders.read().values() {
            holder.fail();
        }
    }

    pub fn len(&self) -> usize {
        self.holders.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pull_roundtrip() {
        let m = PartitionHolderManager::new();
        let h = m.register("feed/intake/0", HolderMode::Passive, 8).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(1), Value::Int(2)])).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(3)])).unwrap();
        let batch = h.pull_batch(3).unwrap();
        assert_eq!(batch.len(), 3);
        assert!(!batch.eof);
    }

    #[test]
    fn eof_cuts_batch_short_and_sticks() {
        let m = PartitionHolderManager::new();
        let h = m.register("h", HolderMode::Passive, 8).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(1)])).unwrap();
        h.push_eof().unwrap();
        let batch = h.pull_batch(100).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(batch.eof);
        let batch = h.pull_batch(100).unwrap();
        assert!(batch.is_empty());
        assert!(batch.eof);
        assert!(h.eof_seen());
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let m = PartitionHolderManager::new();
        let h = m.register("h", HolderMode::Passive, 2).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(1)])).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(2)])).unwrap();
        // Queue full: a third push must block until a consumer pulls.
        let h2 = m.lookup("h").unwrap();
        let t = std::thread::spawn(move || {
            h2.push_frame(Frame::from_records(vec![Value::Int(3)])).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "push should block while the queue is full");
        let _ = h.pull_frame().unwrap();
        t.join().unwrap();
    }

    #[test]
    fn duplicate_registration_rejected() {
        let m = PartitionHolderManager::new();
        m.register("h", HolderMode::Active, 1).unwrap();
        assert!(m.register("h", HolderMode::Active, 1).is_err());
    }

    #[test]
    fn unregister_then_lookup_fails() {
        let m = PartitionHolderManager::new();
        m.register("h", HolderMode::Active, 1).unwrap();
        assert!(m.unregister("h").is_some());
        assert!(m.lookup("h").is_err());
    }

    #[test]
    fn try_pull_all_reports_eof() {
        let m = PartitionHolderManager::new();
        let h = m.register("h", HolderMode::Passive, 8).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(1)])).unwrap();
        let batch = h.try_pull_all();
        assert_eq!(batch.records, vec![Value::Int(1)]);
        assert!(!batch.eof);
        h.push_eof().unwrap();
        assert!(h.try_pull_all().eof);
    }

    #[test]
    fn counters_track_received_and_taken() {
        let m = PartitionHolderManager::new();
        let h = m.register("h", HolderMode::Passive, 8).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(1), Value::Int(2)])).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(3)])).unwrap();
        assert_eq!(h.received(), 3);
        assert_eq!(h.taken(), 0);
        let b = h.pull_batch(2).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(h.taken(), 2, "leftover records count only when handed out");
        let b = h.try_pull_batch(10).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(h.taken(), 3);
        assert!(!h.eof_pushed());
        h.push_eof().unwrap();
        assert!(h.eof_pushed());
    }

    #[test]
    fn try_pull_batch_does_not_block() {
        let m = PartitionHolderManager::new();
        let h = m.register("h", HolderMode::Passive, 8).unwrap();
        let b = h.try_pull_batch(100).unwrap();
        assert!(b.is_empty());
        assert!(!b.eof);
        h.push_frame(Frame::from_records(vec![Value::Int(1)])).unwrap();
        h.push_eof().unwrap();
        let b = h.try_pull_batch(100).unwrap();
        assert_eq!(b.len(), 1);
        assert!(b.eof);
    }

    #[test]
    fn failed_holder_unblocks_both_sides() {
        let m = PartitionHolderManager::new();
        let h = m.register("h", HolderMode::Passive, 1).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(1)])).unwrap();

        // A producer stuck in back-pressure...
        let h2 = h.clone();
        let producer = std::thread::spawn(move || {
            let mut pushed = 0;
            while h2.push_frame(Frame::from_records(vec![Value::Int(9)])).is_ok() {
                pushed += 1;
            }
            pushed
        });
        // ...and a consumer that can only return at EOF.
        let h3 = h.clone();
        let consumer = std::thread::spawn(move || h3.pull_batch(usize::MAX).unwrap());

        std::thread::sleep(std::time::Duration::from_millis(20));
        h.fail();
        let _ = producer.join().unwrap();
        let got = consumer.join().unwrap();
        assert!(got.eof, "consumer must wake with EOF");
        assert!(h.poisoned());
        assert!(h.drained(), "failed holder counts as drained");
        assert!(h.push_frame(Frame::from_records(vec![Value::Int(1)])).is_err());
        assert!(h.push_eof().is_ok(), "EOF after failure is a no-op");
        h.fail(); // idempotent
    }

    #[test]
    fn fail_all_poisons_every_holder() {
        let m = PartitionHolderManager::new();
        let a = m.register("a", HolderMode::Passive, 1).unwrap();
        let b = m.register("b", HolderMode::Active, 1).unwrap();
        m.fail_all();
        assert!(a.poisoned() && b.poisoned());
    }

    #[test]
    fn attached_obs_tracks_depth_and_contention() {
        let registry = idea_obs::MetricsRegistry::new();
        let m = PartitionHolderManager::new();
        let h = m.register("h", HolderMode::Passive, 2).unwrap();
        h.attach_obs(&registry.scope("holder/h"));

        // Stalled consumer: depth probe reads the queued frames.
        h.push_frame(Frame::from_records(vec![Value::Int(1)])).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(2)])).unwrap();
        assert_eq!(registry.snapshot().gauge("holder/h/queue_depth"), Some(2));

        // Queue full: the third push blocks and ticks blocked_pushes.
        let h2 = h.clone();
        let t = std::thread::spawn(move || {
            h2.push_frame(Frame::from_records(vec![Value::Int(3)])).unwrap();
        });
        while registry.counter("holder/h/blocked_pushes").get() == 0 {
            std::thread::yield_now();
        }
        let drained = h.pull_batch(3).unwrap();
        assert_eq!(drained.len(), 3);
        t.join().unwrap();
        assert_eq!(registry.snapshot().gauge("holder/h/queue_depth"), Some(0));
        assert!(registry.counter("holder/h/blocked_pushes").get() >= 1);
    }
}

//! Partition holders (paper §5.3).
//!
//! "A partition holder operator 'guards' a runtime partition by holding
//! the incoming data frames in a queue with a limited size." Two kinds:
//!
//! * **passive** — receives frames from its own job's upstream operators
//!   and *waits for other jobs to pull them* (the intake job's tail; the
//!   computing job pulls batches from it);
//! * **active** — receives frames pushed *by other jobs* and pushes them
//!   on to its own downstream operators (the storage job's head).
//!
//! Both are a bounded queue plus a registration in the node-local
//! [`PartitionHolderManager`]; the mode records the discipline the
//! owning job uses.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};
use idea_adm::Value;
use parking_lot::RwLock;

use crate::frame::Frame;
use crate::{HyracksError, Result};

/// Push/pull discipline of a holder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HolderMode {
    Active,
    Passive,
}

enum HolderMsg {
    Frame(Frame),
    Eof,
}

/// A guarded, bounded frame queue shared between jobs.
pub struct PartitionHolder {
    name: String,
    mode: HolderMode,
    tx: Sender<HolderMsg>,
    rx: Receiver<HolderMsg>,
    eof_seen: AtomicBool,
    /// Records pulled off a frame but beyond a batch boundary; consumed
    /// first by the next pull so batch sizes stay exact regardless of
    /// frame size.
    leftover: parking_lot::Mutex<std::collections::VecDeque<Value>>,
}

impl std::fmt::Debug for PartitionHolder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PartitionHolder({}, {:?}, queued={})", self.name, self.mode, self.rx.len())
    }
}

impl PartitionHolder {
    fn new(name: String, mode: HolderMode, capacity: usize) -> Self {
        let (tx, rx) = bounded(capacity.max(1));
        PartitionHolder {
            name,
            mode,
            tx,
            rx,
            eof_seen: AtomicBool::new(false),
            leftover: parking_lot::Mutex::new(std::collections::VecDeque::new()),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn mode(&self) -> HolderMode {
        self.mode
    }

    /// Frames currently queued.
    pub fn queued(&self) -> usize {
        self.rx.len()
    }

    /// Enqueues a frame, blocking while the queue is full (back-pressure
    /// toward the producer, as with a size-limited queue in the paper).
    pub fn push_frame(&self, frame: Frame) -> Result<()> {
        self.tx
            .send(HolderMsg::Frame(frame))
            .map_err(|_| HyracksError::Disconnected("partition holder"))
    }

    /// Marks end-of-feed: the special "EOF" record of §6.1. Consumers
    /// finish their current batch without waiting for it to fill.
    pub fn push_eof(&self) -> Result<()> {
        self.tx
            .send(HolderMsg::Eof)
            .map_err(|_| HyracksError::Disconnected("partition holder"))
    }

    /// Whether EOF has been *consumed* from this holder.
    pub fn eof_seen(&self) -> bool {
        self.eof_seen.load(Ordering::Acquire)
    }

    /// Pulls one frame, blocking; `None` means EOF.
    pub fn pull_frame(&self) -> Result<Option<Frame>> {
        if self.eof_seen() {
            return Ok(None);
        }
        match self.rx.recv() {
            Ok(HolderMsg::Frame(f)) => Ok(Some(f)),
            Ok(HolderMsg::Eof) => {
                self.eof_seen.store(true, Ordering::Release);
                Ok(None)
            }
            Err(_) => Err(HyracksError::Disconnected("partition holder")),
        }
    }

    /// Pulls records until `max_records` are collected or EOF arrives;
    /// returns the batch and whether EOF was reached. This is how a
    /// computing job collects its parameter batch from the intake job.
    pub fn pull_batch(&self, max_records: usize) -> Result<(Vec<Value>, bool)> {
        let mut out = Vec::with_capacity(max_records.min(4096));
        {
            let mut leftover = self.leftover.lock();
            while out.len() < max_records {
                match leftover.pop_front() {
                    Some(r) => out.push(r),
                    None => break,
                }
            }
        }
        if out.len() >= max_records {
            return Ok((out, self.eof_seen()));
        }
        if self.eof_seen() {
            return Ok((out, true));
        }
        while out.len() < max_records {
            match self.rx.recv() {
                Ok(HolderMsg::Frame(f)) => {
                    let mut records = f.into_records().into_iter();
                    while out.len() < max_records {
                        match records.next() {
                            Some(r) => out.push(r),
                            None => break,
                        }
                    }
                    // Stash anything beyond the batch boundary.
                    let mut leftover = self.leftover.lock();
                    leftover.extend(records);
                }
                Ok(HolderMsg::Eof) => {
                    self.eof_seen.store(true, Ordering::Release);
                    return Ok((out, true));
                }
                Err(_) => return Err(HyracksError::Disconnected("partition holder")),
            }
        }
        Ok((out, false))
    }

    /// Whether EOF has been consumed and no records remain (queued or
    /// leftover) — the feed driver's stop condition.
    pub fn drained(&self) -> bool {
        self.eof_seen() && self.rx.is_empty() && self.leftover.lock().is_empty()
    }

    /// Non-blocking drain used by tests and shutdown paths.
    pub fn try_pull_all(&self) -> Vec<Value> {
        let mut out: Vec<Value> = self.leftover.lock().drain(..).collect();
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                HolderMsg::Frame(f) => out.extend(f.into_records()),
                HolderMsg::Eof => {
                    self.eof_seen.store(true, Ordering::Release);
                    break;
                }
            }
        }
        out
    }
}

/// Node-local registry: "when a new partition holder is created, it
/// registers with the local partition holder manager" (§5.3).
#[derive(Debug, Default)]
pub struct PartitionHolderManager {
    holders: RwLock<HashMap<String, Arc<PartitionHolder>>>,
}

impl PartitionHolderManager {
    pub fn new() -> Self {
        PartitionHolderManager::default()
    }

    /// Creates and registers a holder. Re-registering a live name is a
    /// configuration error.
    pub fn register(
        &self,
        name: impl Into<String>,
        mode: HolderMode,
        capacity: usize,
    ) -> Result<Arc<PartitionHolder>> {
        let name = name.into();
        let mut map = self.holders.write();
        if map.contains_key(&name) {
            return Err(HyracksError::Config(format!("holder '{name}' already registered")));
        }
        let holder = Arc::new(PartitionHolder::new(name.clone(), mode, capacity));
        map.insert(name, holder.clone());
        Ok(holder)
    }

    /// Finds a registered holder.
    pub fn lookup(&self, name: &str) -> Result<Arc<PartitionHolder>> {
        self.holders
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| HyracksError::Config(format!("no holder named '{name}'")))
    }

    /// Drops a holder registration (feed shutdown).
    pub fn unregister(&self, name: &str) -> Option<Arc<PartitionHolder>> {
        self.holders.write().remove(name)
    }

    pub fn len(&self) -> usize {
        self.holders.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pull_roundtrip() {
        let m = PartitionHolderManager::new();
        let h = m.register("feed/intake/0", HolderMode::Passive, 8).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(1), Value::Int(2)])).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(3)])).unwrap();
        let (batch, eof) = h.pull_batch(3).unwrap();
        assert_eq!(batch.len(), 3);
        assert!(!eof);
    }

    #[test]
    fn eof_cuts_batch_short_and_sticks() {
        let m = PartitionHolderManager::new();
        let h = m.register("h", HolderMode::Passive, 8).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(1)])).unwrap();
        h.push_eof().unwrap();
        let (batch, eof) = h.pull_batch(100).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(eof);
        let (batch, eof) = h.pull_batch(100).unwrap();
        assert!(batch.is_empty());
        assert!(eof);
        assert!(h.eof_seen());
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let m = PartitionHolderManager::new();
        let h = m.register("h", HolderMode::Passive, 2).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(1)])).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(2)])).unwrap();
        // Queue full: a third push must block until a consumer pulls.
        let h2 = m.lookup("h").unwrap();
        let t = std::thread::spawn(move || {
            h2.push_frame(Frame::from_records(vec![Value::Int(3)])).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "push should block while the queue is full");
        let _ = h.pull_frame().unwrap();
        t.join().unwrap();
    }

    #[test]
    fn duplicate_registration_rejected() {
        let m = PartitionHolderManager::new();
        m.register("h", HolderMode::Active, 1).unwrap();
        assert!(m.register("h", HolderMode::Active, 1).is_err());
    }

    #[test]
    fn unregister_then_lookup_fails() {
        let m = PartitionHolderManager::new();
        m.register("h", HolderMode::Active, 1).unwrap();
        assert!(m.unregister("h").is_some());
        assert!(m.lookup("h").is_err());
    }
}

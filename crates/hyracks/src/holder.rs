//! Partition holders (paper §5.3).
//!
//! "A partition holder operator 'guards' a runtime partition by holding
//! the incoming data frames in a queue with a limited size." Two kinds:
//!
//! * **passive** — receives frames from its own job's upstream operators
//!   and *waits for other jobs to pull them* (the intake job's tail; the
//!   computing job pulls batches from it);
//! * **active** — receives frames pushed *by other jobs* and pushes them
//!   on to its own downstream operators (the storage job's head).
//!
//! Both are a bounded queue plus a registration in the node-local
//! [`PartitionHolderManager`]; the mode records the discipline the
//! owning job uses.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use idea_adm::Value;
use idea_obs::{Counter, MetricsScope};
use parking_lot::RwLock;

use crate::frame::Frame;
use crate::{HyracksError, Result};

/// Push/pull discipline of a holder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HolderMode {
    Active,
    Passive,
}

enum HolderMsg {
    Frame(Frame),
    Eof,
}

/// A batch of records pulled from a holder, with an explicit marker for
/// whether the feed's EOF record was reached while collecting it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Batch {
    pub records: Vec<Value>,
    pub eof: bool,
}

impl Batch {
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn into_records(self) -> Vec<Value> {
        self.records
    }
}

/// Contention instruments attached by the observability layer: how
/// often producers found the queue full and consumers found it empty.
#[derive(Debug, Clone)]
struct HolderObs {
    blocked_pushes: Arc<Counter>,
    blocked_pulls: Arc<Counter>,
}

/// A guarded, bounded frame queue shared between jobs.
pub struct PartitionHolder {
    name: String,
    mode: HolderMode,
    tx: Sender<HolderMsg>,
    rx: Receiver<HolderMsg>,
    eof_seen: AtomicBool,
    /// Records pulled off a frame but beyond a batch boundary; consumed
    /// first by the next pull so batch sizes stay exact regardless of
    /// frame size.
    leftover: parking_lot::Mutex<std::collections::VecDeque<Value>>,
    obs: RwLock<Option<HolderObs>>,
}

impl std::fmt::Debug for PartitionHolder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PartitionHolder({}, {:?}, queued={})", self.name, self.mode, self.rx.len())
    }
}

impl PartitionHolder {
    fn new(name: String, mode: HolderMode, capacity: usize) -> Self {
        let (tx, rx) = bounded(capacity.max(1));
        PartitionHolder {
            name,
            mode,
            tx,
            rx,
            eof_seen: AtomicBool::new(false),
            leftover: parking_lot::Mutex::new(std::collections::VecDeque::new()),
            obs: RwLock::new(None),
        }
    }

    /// Wires this holder into a metrics scope: a `queue_depth` probe
    /// (sampled at snapshot time) plus `blocked_pushes`/`blocked_pulls`
    /// counters for producer back-pressure and consumer starvation.
    pub fn attach_obs(self: &Arc<Self>, scope: &MetricsScope) {
        let me = Arc::downgrade(self);
        scope.probe("queue_depth", move || me.upgrade().map_or(0, |h| h.queued() as i64));
        *self.obs.write() = Some(HolderObs {
            blocked_pushes: scope.counter("blocked_pushes"),
            blocked_pulls: scope.counter("blocked_pulls"),
        });
    }

    fn note_blocked_push(&self) {
        if let Some(obs) = &*self.obs.read() {
            obs.blocked_pushes.inc();
        }
    }

    fn note_blocked_pull(&self) {
        if let Some(obs) = &*self.obs.read() {
            obs.blocked_pulls.inc();
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn mode(&self) -> HolderMode {
        self.mode
    }

    /// Frames currently queued.
    pub fn queued(&self) -> usize {
        self.rx.len()
    }

    /// Enqueues a frame, blocking while the queue is full (back-pressure
    /// toward the producer, as with a size-limited queue in the paper).
    pub fn push_frame(&self, frame: Frame) -> Result<()> {
        // Fast path first so the blocked-push counter only ticks when
        // back-pressure actually engages.
        let msg = match self.tx.try_send(HolderMsg::Frame(frame)) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Full(msg)) => {
                self.note_blocked_push();
                msg
            }
            Err(TrySendError::Disconnected(_)) => {
                return Err(HyracksError::Disconnected("partition holder"))
            }
        };
        self.tx.send(msg).map_err(|_| HyracksError::Disconnected("partition holder"))
    }

    /// Marks end-of-feed: the special "EOF" record of §6.1. Consumers
    /// finish their current batch without waiting for it to fill.
    pub fn push_eof(&self) -> Result<()> {
        self.tx
            .send(HolderMsg::Eof)
            .map_err(|_| HyracksError::Disconnected("partition holder"))
    }

    /// Whether EOF has been *consumed* from this holder.
    pub fn eof_seen(&self) -> bool {
        self.eof_seen.load(Ordering::Acquire)
    }

    /// Pulls one frame, blocking; `None` means EOF.
    pub fn pull_frame(&self) -> Result<Option<Frame>> {
        if self.eof_seen() {
            return Ok(None);
        }
        if self.rx.is_empty() {
            self.note_blocked_pull();
        }
        match self.rx.recv() {
            Ok(HolderMsg::Frame(f)) => Ok(Some(f)),
            Ok(HolderMsg::Eof) => {
                self.eof_seen.store(true, Ordering::Release);
                Ok(None)
            }
            Err(_) => Err(HyracksError::Disconnected("partition holder")),
        }
    }

    /// Pulls records until `max_records` are collected or EOF arrives.
    /// This is how a computing job collects its parameter batch from
    /// the intake job; `Batch::eof` tells the driver whether this was
    /// the feed's last batch.
    pub fn pull_batch(&self, max_records: usize) -> Result<Batch> {
        let mut out = Vec::with_capacity(max_records.min(4096));
        {
            let mut leftover = self.leftover.lock();
            while out.len() < max_records {
                match leftover.pop_front() {
                    Some(r) => out.push(r),
                    None => break,
                }
            }
        }
        if out.len() >= max_records {
            return Ok(Batch { records: out, eof: self.eof_seen() });
        }
        if self.eof_seen() {
            return Ok(Batch { records: out, eof: true });
        }
        while out.len() < max_records {
            if self.rx.is_empty() {
                self.note_blocked_pull();
            }
            match self.rx.recv() {
                Ok(HolderMsg::Frame(f)) => {
                    let mut records = f.into_records().into_iter();
                    while out.len() < max_records {
                        match records.next() {
                            Some(r) => out.push(r),
                            None => break,
                        }
                    }
                    // Stash anything beyond the batch boundary.
                    let mut leftover = self.leftover.lock();
                    leftover.extend(records);
                }
                Ok(HolderMsg::Eof) => {
                    self.eof_seen.store(true, Ordering::Release);
                    return Ok(Batch { records: out, eof: true });
                }
                Err(_) => return Err(HyracksError::Disconnected("partition holder")),
            }
        }
        Ok(Batch { records: out, eof: false })
    }

    /// Whether EOF has been consumed and no records remain (queued or
    /// leftover) — the feed driver's stop condition.
    pub fn drained(&self) -> bool {
        self.eof_seen() && self.rx.is_empty() && self.leftover.lock().is_empty()
    }

    /// Non-blocking drain used by tests and shutdown paths; `eof` in
    /// the returned [`Batch`] reports whether the EOF marker has been
    /// consumed (now or earlier).
    pub fn try_pull_all(&self) -> Batch {
        let mut out: Vec<Value> = self.leftover.lock().drain(..).collect();
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                HolderMsg::Frame(f) => out.extend(f.into_records()),
                HolderMsg::Eof => {
                    self.eof_seen.store(true, Ordering::Release);
                    break;
                }
            }
        }
        Batch { records: out, eof: self.eof_seen() }
    }
}

/// Node-local registry: "when a new partition holder is created, it
/// registers with the local partition holder manager" (§5.3).
#[derive(Debug, Default)]
pub struct PartitionHolderManager {
    holders: RwLock<HashMap<String, Arc<PartitionHolder>>>,
}

impl PartitionHolderManager {
    pub fn new() -> Self {
        PartitionHolderManager::default()
    }

    /// Creates and registers a holder. Re-registering a live name is a
    /// configuration error.
    pub fn register(
        &self,
        name: impl Into<String>,
        mode: HolderMode,
        capacity: usize,
    ) -> Result<Arc<PartitionHolder>> {
        let name = name.into();
        let mut map = self.holders.write();
        if map.contains_key(&name) {
            return Err(HyracksError::Config(format!("holder '{name}' already registered")));
        }
        let holder = Arc::new(PartitionHolder::new(name.clone(), mode, capacity));
        map.insert(name, holder.clone());
        Ok(holder)
    }

    /// Finds a registered holder.
    pub fn lookup(&self, name: &str) -> Result<Arc<PartitionHolder>> {
        self.holders
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| HyracksError::Config(format!("no holder named '{name}'")))
    }

    /// Drops a holder registration (feed shutdown).
    pub fn unregister(&self, name: &str) -> Option<Arc<PartitionHolder>> {
        self.holders.write().remove(name)
    }

    pub fn len(&self) -> usize {
        self.holders.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pull_roundtrip() {
        let m = PartitionHolderManager::new();
        let h = m.register("feed/intake/0", HolderMode::Passive, 8).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(1), Value::Int(2)])).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(3)])).unwrap();
        let batch = h.pull_batch(3).unwrap();
        assert_eq!(batch.len(), 3);
        assert!(!batch.eof);
    }

    #[test]
    fn eof_cuts_batch_short_and_sticks() {
        let m = PartitionHolderManager::new();
        let h = m.register("h", HolderMode::Passive, 8).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(1)])).unwrap();
        h.push_eof().unwrap();
        let batch = h.pull_batch(100).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(batch.eof);
        let batch = h.pull_batch(100).unwrap();
        assert!(batch.is_empty());
        assert!(batch.eof);
        assert!(h.eof_seen());
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let m = PartitionHolderManager::new();
        let h = m.register("h", HolderMode::Passive, 2).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(1)])).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(2)])).unwrap();
        // Queue full: a third push must block until a consumer pulls.
        let h2 = m.lookup("h").unwrap();
        let t = std::thread::spawn(move || {
            h2.push_frame(Frame::from_records(vec![Value::Int(3)])).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "push should block while the queue is full");
        let _ = h.pull_frame().unwrap();
        t.join().unwrap();
    }

    #[test]
    fn duplicate_registration_rejected() {
        let m = PartitionHolderManager::new();
        m.register("h", HolderMode::Active, 1).unwrap();
        assert!(m.register("h", HolderMode::Active, 1).is_err());
    }

    #[test]
    fn unregister_then_lookup_fails() {
        let m = PartitionHolderManager::new();
        m.register("h", HolderMode::Active, 1).unwrap();
        assert!(m.unregister("h").is_some());
        assert!(m.lookup("h").is_err());
    }

    #[test]
    fn try_pull_all_reports_eof() {
        let m = PartitionHolderManager::new();
        let h = m.register("h", HolderMode::Passive, 8).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(1)])).unwrap();
        let batch = h.try_pull_all();
        assert_eq!(batch.records, vec![Value::Int(1)]);
        assert!(!batch.eof);
        h.push_eof().unwrap();
        assert!(h.try_pull_all().eof);
    }

    #[test]
    fn attached_obs_tracks_depth_and_contention() {
        let registry = idea_obs::MetricsRegistry::new();
        let m = PartitionHolderManager::new();
        let h = m.register("h", HolderMode::Passive, 2).unwrap();
        h.attach_obs(&registry.scope("holder/h"));

        // Stalled consumer: depth probe reads the queued frames.
        h.push_frame(Frame::from_records(vec![Value::Int(1)])).unwrap();
        h.push_frame(Frame::from_records(vec![Value::Int(2)])).unwrap();
        assert_eq!(registry.snapshot().gauge("holder/h/queue_depth"), Some(2));

        // Queue full: the third push blocks and ticks blocked_pushes.
        let h2 = h.clone();
        let t = std::thread::spawn(move || {
            h2.push_frame(Frame::from_records(vec![Value::Int(3)])).unwrap();
        });
        while registry.counter("holder/h/blocked_pushes").get() == 0 {
            std::thread::yield_now();
        }
        let drained = h.pull_batch(3).unwrap();
        assert_eq!(drained.len(), 3);
        t.join().unwrap();
        assert_eq!(registry.snapshot().gauge("holder/h/queue_depth"), Some(0));
        assert!(registry.counter("holder/h/blocked_pushes").get() >= 1);
    }
}

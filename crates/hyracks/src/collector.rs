//! Result collection: how a query job hands its final rows back to the
//! caller.
//!
//! A Hyracks job is fire-and-forget from the runtime's point of view —
//! operators push frames downstream and the job handle only reports
//! success or failure. Queries need the final stage's output back on the
//! calling thread, so the merge stage ends in a [`CollectorOp`] writing
//! into a [`ResultChannel`] the caller holds the other end of.
//!
//! The channel speaks a small message protocol: zero or more
//! [`ResultMsg::Batch`] frames followed by one [`ResultMsg::End`] per
//! invocation. A *buffered* collector (built with a finisher, e.g. for
//! ORDER BY / LIMIT / DISTINCT) sends one batch at close; a *streaming*
//! collector forwards every input frame as its own batch the moment it
//! arrives, which is what lets `RowStream` consumers start reading merge
//! output before the job has finished.
//!
//! The channel is unbounded: the collector runs as the single task of
//! the last stage and the pool serializes invocations — so at most one
//! invocation's messages are in flight and a send can never block a pool
//! worker, even when the caller is slow to read.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use idea_adm::Value;

use crate::frame::Frame;
use crate::job::TaskContext;
use crate::operator::{FrameSink, Operator};
use crate::{HyracksError, Result};

/// Transformation applied to collected rows before they are sent.
///
/// Buffered collectors apply it once over the full result set
/// (sort/limit/distinct for queries); streaming collectors apply it to
/// each batch independently (decode/projection only).
pub type Finisher = Arc<dyn Fn(Vec<Value>, &TaskContext) -> Result<Vec<Value>> + Send + Sync>;

/// One message of an invocation's result stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ResultMsg {
    /// A batch of result rows, in output order.
    Batch(Vec<Value>),
    /// The invocation produced no further rows.
    End,
}

/// The caller-side half of a collector: per job invocation, a stream of
/// [`ResultMsg::Batch`] messages terminated by [`ResultMsg::End`].
#[derive(Debug)]
pub struct ResultChannel {
    tx: Sender<ResultMsg>,
    rx: Receiver<ResultMsg>,
}

impl ResultChannel {
    pub fn new() -> Arc<ResultChannel> {
        let (tx, rx) = unbounded();
        Arc::new(ResultChannel { tx, rx })
    }

    /// Sends one batch of result rows (collector side).
    pub fn send_batch(&self, rows: Vec<Value>) -> Result<()> {
        self.tx
            .send(ResultMsg::Batch(rows))
            .map_err(|_| HyracksError::Disconnected("result channel"))
    }

    /// Marks the current invocation's stream complete (collector side).
    pub fn end(&self) -> Result<()> {
        self.tx
            .send(ResultMsg::End)
            .map_err(|_| HyracksError::Disconnected("result channel"))
    }

    /// Receives the next message of the current invocation (caller
    /// side). The timeout guards against wiring bugs; a completed
    /// invocation has already sent `End` by the time its handle joins.
    pub fn recv_msg(&self, timeout: Duration) -> Result<ResultMsg> {
        self.rx
            .recv_timeout(timeout)
            .map_err(|_| HyracksError::Disconnected("result channel (recv timeout)"))
    }

    /// Receives and concatenates every batch up to `End`: the
    /// materialized view of one invocation's stream.
    pub fn recv_all(&self, timeout: Duration) -> Result<Vec<Value>> {
        let mut rows = Vec::new();
        loop {
            match self.recv_msg(timeout)? {
                ResultMsg::Batch(mut b) => rows.append(&mut b),
                ResultMsg::End => return Ok(rows),
            }
        }
    }

    /// Discards any buffered messages (after a failed invocation, so a
    /// partial result stream cannot be mistaken for the next
    /// invocation's). Returns the number of messages dropped.
    pub fn drain(&self) -> usize {
        self.rx.try_iter().count()
    }
}

enum Mode {
    /// Buffer every record; at close apply the finisher over the full
    /// set and send it as a single batch.
    Buffered { buf: Vec<Value>, finisher: Option<Finisher> },
    /// Forward each input frame as its own batch as soon as it arrives,
    /// mapped through the (stateless, per-batch) finisher.
    Streaming { mapper: Option<Finisher> },
}

/// Terminal operator feeding a [`ResultChannel`].
pub struct CollectorOp {
    mode: Mode,
    chan: Arc<ResultChannel>,
}

impl CollectorOp {
    /// A buffered collector with no finalization.
    pub fn new(chan: Arc<ResultChannel>) -> CollectorOp {
        CollectorOp { mode: Mode::Buffered { buf: Vec::new(), finisher: None }, chan }
    }

    /// A buffered collector: collects everything, finishes at close.
    pub fn with_finisher(chan: Arc<ResultChannel>, finisher: Finisher) -> CollectorOp {
        CollectorOp { mode: Mode::Buffered { buf: Vec::new(), finisher: Some(finisher) }, chan }
    }

    /// A streaming collector: each input frame becomes one result batch
    /// immediately, mapped through `mapper` (which must therefore be a
    /// pure per-row decode — no sorting, limiting or deduplication).
    pub fn streaming(chan: Arc<ResultChannel>, mapper: Finisher) -> CollectorOp {
        CollectorOp { mode: Mode::Streaming { mapper: Some(mapper) }, chan }
    }
}

impl Operator for CollectorOp {
    fn next_frame(
        &mut self,
        frame: Frame,
        _out: &mut dyn FrameSink,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        match &mut self.mode {
            Mode::Buffered { buf, .. } => {
                buf.extend(frame.into_records());
                Ok(())
            }
            Mode::Streaming { mapper } => {
                let rows = frame.into_records();
                let rows = match mapper {
                    Some(m) => m(rows, ctx)?,
                    None => rows,
                };
                self.chan.send_batch(rows)
            }
        }
    }

    fn close(&mut self, _out: &mut dyn FrameSink, ctx: &mut TaskContext) -> Result<()> {
        match &mut self.mode {
            Mode::Buffered { buf, finisher } => {
                let rows = std::mem::take(buf);
                let rows = match finisher {
                    Some(f) => f(rows, ctx)?,
                    None => rows,
                };
                self.chan.send_batch(rows)?;
            }
            Mode::Streaming { .. } => {}
        }
        self.chan.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::ConnectorSpec;
    use crate::executor::run_job;
    use crate::job::JobSpec;
    use crate::operator::FnSource;
    use crate::Cluster;

    fn emit_stage(spec: JobSpec, connector: ConnectorSpec) -> JobSpec {
        spec.stage(
            "emit",
            connector,
            Arc::new(|ctx: &TaskContext| {
                let base = ctx.partition as i64 * 10;
                Box::new(FnSource(move |sink: &mut dyn FrameSink, _: &mut TaskContext| {
                    sink.push(Frame::from_records((base..base + 3).map(Value::Int).collect()))
                })) as Box<dyn Operator>
            }),
        )
    }

    #[test]
    fn collector_returns_rows_to_caller() {
        let cluster = Cluster::with_nodes(3);
        let chan = ResultChannel::new();
        let chan2 = chan.clone();
        let spec = emit_stage(JobSpec::new("collect"), ConnectorSpec::RoundRobin).stage_on(
            "collect",
            vec![0],
            ConnectorSpec::OneToOne,
            Arc::new(move |_: &TaskContext| {
                Box::new(CollectorOp::with_finisher(
                    chan2.clone(),
                    Arc::new(|mut rows, _| {
                        rows.sort();
                        Ok(rows)
                    }),
                )) as Box<dyn Operator>
            }),
        );
        run_job(&cluster, &spec, Value::Missing).unwrap().join().unwrap();
        let rows = chan.recv_all(Duration::from_secs(5)).unwrap();
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0], Value::Int(0));
        assert_eq!(rows[8], Value::Int(22));
    }

    #[test]
    fn streaming_collector_emits_batches_then_end() {
        let cluster = Cluster::with_nodes(3);
        let chan = ResultChannel::new();
        let chan2 = chan.clone();
        let spec = emit_stage(JobSpec::new("stream"), ConnectorSpec::RoundRobin).stage_on(
            "collect",
            vec![0],
            ConnectorSpec::OneToOne,
            Arc::new(move |_: &TaskContext| {
                Box::new(CollectorOp::streaming(chan2.clone(), Arc::new(|rows, _| Ok(rows))))
                    as Box<dyn Operator>
            }),
        );
        run_job(&cluster, &spec, Value::Missing).unwrap().join().unwrap();
        let mut rows = Vec::new();
        let mut batches = 0;
        while let ResultMsg::Batch(mut b) = chan.recv_msg(Duration::from_secs(5)).unwrap() {
            batches += 1;
            rows.append(&mut b);
        }
        assert!(batches >= 3, "one batch per upstream frame, got {batches}");
        rows.sort();
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[8], Value::Int(22));
    }

    #[test]
    fn drain_discards_stale_results() {
        let chan = ResultChannel::new();
        chan.send_batch(vec![Value::Int(1)]).unwrap();
        chan.end().unwrap();
        assert_eq!(chan.drain(), 2);
        assert!(chan.recv_msg(Duration::from_millis(10)).is_err());
    }
}

//! Result collection: how a query job hands its final rows back to the
//! caller.
//!
//! A Hyracks job is fire-and-forget from the runtime's point of view —
//! operators push frames downstream and the job handle only reports
//! success or failure. Queries need the final stage's output back on the
//! calling thread, so the merge stage ends in a [`CollectorOp`] writing
//! into a [`ResultChannel`] the caller holds the other end of.
//!
//! The channel is unbounded: the collector runs as the single task of
//! the last stage, sends exactly one result set per invocation, and the
//! pool serializes invocations — so at most one result is in flight and
//! the send can never block a pool worker.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use idea_adm::Value;

use crate::frame::Frame;
use crate::job::TaskContext;
use crate::operator::{FrameSink, Operator};
use crate::{HyracksError, Result};

/// Finalization applied to the collected rows before they are sent
/// (sort/limit/distinct for queries; identity for plain collection).
pub type Finisher = Arc<dyn Fn(Vec<Value>, &TaskContext) -> Result<Vec<Value>> + Send + Sync>;

/// The caller-side half of a collector: one `Vec<Value>` result set per
/// job invocation.
#[derive(Debug)]
pub struct ResultChannel {
    tx: Sender<Vec<Value>>,
    rx: Receiver<Vec<Value>>,
}

impl ResultChannel {
    pub fn new() -> Arc<ResultChannel> {
        let (tx, rx) = unbounded();
        Arc::new(ResultChannel { tx, rx })
    }

    /// Sends one invocation's result set (collector side).
    pub fn send(&self, rows: Vec<Value>) -> Result<()> {
        self.tx.send(rows).map_err(|_| HyracksError::Disconnected("result channel"))
    }

    /// Receives one invocation's result set (caller side). The timeout
    /// guards against wiring bugs; a completed invocation has already
    /// sent by the time its handle joins.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Vec<Value>> {
        self.rx
            .recv_timeout(timeout)
            .map_err(|_| HyracksError::Disconnected("result channel (recv timeout)"))
    }

    /// Discards any buffered result sets (after a failed invocation, so
    /// a partial result cannot be mistaken for the next invocation's).
    pub fn drain(&self) -> usize {
        self.rx.try_iter().count()
    }
}

/// Terminal operator: buffers every input record, applies the finisher
/// at close, and sends the finished rows through the result channel.
pub struct CollectorOp {
    buf: Vec<Value>,
    chan: Arc<ResultChannel>,
    finisher: Option<Finisher>,
}

impl CollectorOp {
    pub fn new(chan: Arc<ResultChannel>) -> CollectorOp {
        CollectorOp { buf: Vec::new(), chan, finisher: None }
    }

    pub fn with_finisher(chan: Arc<ResultChannel>, finisher: Finisher) -> CollectorOp {
        CollectorOp { buf: Vec::new(), chan, finisher: Some(finisher) }
    }
}

impl Operator for CollectorOp {
    fn next_frame(
        &mut self,
        frame: Frame,
        _out: &mut dyn FrameSink,
        _ctx: &mut TaskContext,
    ) -> Result<()> {
        self.buf.extend(frame.into_records());
        Ok(())
    }

    fn close(&mut self, _out: &mut dyn FrameSink, ctx: &mut TaskContext) -> Result<()> {
        let rows = std::mem::take(&mut self.buf);
        let rows = match &self.finisher {
            Some(f) => f(rows, ctx)?,
            None => rows,
        };
        self.chan.send(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::ConnectorSpec;
    use crate::executor::run_job;
    use crate::job::JobSpec;
    use crate::operator::FnSource;
    use crate::Cluster;

    #[test]
    fn collector_returns_rows_to_caller() {
        let cluster = Cluster::with_nodes(3);
        let chan = ResultChannel::new();
        let chan2 = chan.clone();
        let spec = JobSpec::new("collect")
            .stage(
                "emit",
                ConnectorSpec::RoundRobin,
                Arc::new(|ctx: &TaskContext| {
                    let base = ctx.partition as i64 * 10;
                    Box::new(FnSource(move |sink: &mut dyn FrameSink, _: &mut TaskContext| {
                        sink.push(Frame::from_records((base..base + 3).map(Value::Int).collect()))
                    })) as Box<dyn Operator>
                }),
            )
            .stage_on(
                "collect",
                vec![0],
                ConnectorSpec::OneToOne,
                Arc::new(move |_: &TaskContext| {
                    Box::new(CollectorOp::with_finisher(
                        chan2.clone(),
                        Arc::new(|mut rows, _| {
                            rows.sort();
                            Ok(rows)
                        }),
                    )) as Box<dyn Operator>
                }),
            );
        run_job(&cluster, &spec, Value::Missing).unwrap().join().unwrap();
        let rows = chan.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0], Value::Int(0));
        assert_eq!(rows[8], Value::Int(22));
    }

    #[test]
    fn drain_discards_stale_results() {
        let chan = ResultChannel::new();
        chan.send(vec![Value::Int(1)]).unwrap();
        chan.send(vec![Value::Int(2)]).unwrap();
        assert_eq!(chan.drain(), 2);
        assert!(chan.recv_timeout(Duration::from_millis(10)).is_err());
    }
}

//! Job execution: instantiate a [`JobSpec`] across the cluster and run
//! it to completion.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use idea_adm::Value;
use idea_obs::Gauge;

use crate::cluster::Cluster;
use crate::connector::ConnectorSpec;
use crate::frame::Frame;
use crate::job::{JobSpec, TaskContext};
use crate::operator::FrameSink;
use crate::pool::{panic_message, InvocationState, Latch, LatchGuard};
use crate::{HyracksError, Result};

/// A running job; join it to wait for completion and collect task
/// failures.
pub struct JobHandle {
    name: String,
    inner: HandleInner,
}

enum HandleInner {
    /// Fallback path: one freshly spawned OS thread per task.
    Spawned { tasks: Vec<JoinHandle<Result<()>>>, latch: Arc<Latch> },
    /// One invocation running on a resident task pool (predeployed job).
    Pooled(Arc<InvocationState>),
}

impl JobHandle {
    pub(crate) fn pooled(name: String, inv: Arc<InvocationState>) -> JobHandle {
        JobHandle { name, inner: HandleInner::Pooled(inv) }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Waits for all tasks; the first task error (or panic) is returned.
    pub fn join(self) -> Result<()> {
        match self.inner {
            HandleInner::Spawned { tasks, .. } => {
                let mut first_err = None;
                for t in tasks {
                    match t.join() {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => {
                            first_err.get_or_insert(e);
                        }
                        Err(p) => {
                            first_err.get_or_insert(HyracksError::TaskPanic(panic_message(&p)));
                        }
                    }
                }
                match first_err {
                    None => Ok(()),
                    Some(e) => Err(e),
                }
            }
            HandleInner::Pooled(inv) => inv.wait(),
        }
    }

    /// Whether every task has finished (non-blocking).
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            HandleInner::Spawned { latch, .. } => latch.is_done(),
            HandleInner::Pooled(inv) => inv.is_done(),
        }
    }

    /// Parks until the job finishes or `timeout` elapses; returns
    /// whether the job finished. The event-driven replacement for
    /// polling [`is_finished`](Self::is_finished) in a sleep loop: a
    /// completing job wakes the waiter through the latch condvar.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        match &self.inner {
            HandleInner::Spawned { latch, .. } => latch.wait_timeout(timeout),
            HandleInner::Pooled(inv) => inv.wait_timeout(timeout),
        }
    }
}

/// A sink for the last stage: pushing into it is a wiring bug (terminal
/// operators consume their input — e.g. write to storage or a holder).
pub(crate) struct TerminalSink;

impl FrameSink for TerminalSink {
    fn push(&mut self, _frame: Frame) -> Result<()> {
        Err(HyracksError::Config(
            "last stage pushed a frame but has no downstream connector".into(),
        ))
    }
}

/// RAII increment of the `hyracks/tasks_active` gauge for one task
/// thread's lifetime.
pub(crate) struct ActiveTask(Arc<Gauge>);

impl ActiveTask {
    pub(crate) fn enter(gauge: Arc<Gauge>) -> ActiveTask {
        gauge.inc();
        ActiveTask(gauge)
    }
}

impl Drop for ActiveTask {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// Plans per-stage node assignments for `spec` and validates the wiring.
/// Unpinned stages spread over the *alive* nodes only (the CC re-plans
/// around dead NCs); pinned stages are partition-bound — a pinned dead
/// node fails the job. Shared by the spawn-per-run path and the
/// resident-pool build so both reject the same specs with the same
/// errors.
pub(crate) fn plan_assignments(cluster: &Cluster, spec: &JobSpec) -> Result<Vec<Vec<usize>>> {
    if spec.stages.is_empty() {
        return Err(HyracksError::Config("job has no stages".into()));
    }
    let n_nodes = cluster.node_count();
    let alive: Vec<usize> = cluster.alive_nodes();
    if alive.is_empty() {
        return Err(HyracksError::Config("no alive nodes in cluster".into()));
    }
    let assignments: Vec<Vec<usize>> = (0..spec.stages.len())
        .map(|s| match spec.stages[s].nodes {
            Some(_) => spec.stage_nodes(s, n_nodes),
            None => alive.clone(),
        })
        .collect();
    for (s, nodes) in assignments.iter().enumerate() {
        if nodes.is_empty() {
            return Err(HyracksError::Config(format!("stage {s} assigned no nodes")));
        }
        if nodes.iter().any(|&n| n >= n_nodes) {
            return Err(HyracksError::Config(format!("stage {s} assigned missing node")));
        }
        if let Some(&dead) = nodes.iter().find(|&&n| !cluster.node(n).is_alive()) {
            return Err(HyracksError::NodeDown(dead));
        }
    }
    // For OneToOne connectors the two stages must align 1:1.
    for (s, stage) in spec.stages.iter().enumerate().take(spec.stages.len() - 1) {
        if matches!(stage.connector, ConnectorSpec::OneToOne)
            && assignments[s].len() != assignments[s + 1].len()
        {
            return Err(HyracksError::Config(format!(
                "one-to-one connector between stages {s} and {} with different partition counts",
                s + 1
            )));
        }
    }
    Ok(assignments)
}

enum TaskInput {
    Source,
    Channel(Receiver<Frame>),
}

enum TaskOutput {
    Terminal,
    Connector(ConnectorSpec, Vec<Sender<Frame>>),
}

/// Starts `spec` on `cluster` with an invocation parameter and returns a
/// handle. The CC dispatch loop pays
/// [`crate::ClusterConfig::task_dispatch_cost`] per task serially; each
/// task then sleeps [`crate::ClusterConfig::task_start_latency`] before
/// its operator opens — together these model the job-activation overhead
/// that grows with cluster size (paper §7.1).
pub fn run_job(
    cluster: &Arc<Cluster>,
    spec: &JobSpec,
    param: impl Into<Arc<Value>>,
) -> Result<JobHandle> {
    let assignments = plan_assignments(cluster, spec)?;
    cluster.record_job_start();
    let instance = cluster.next_job_instance();
    let param: Arc<Value> = param.into();

    // Channels feeding each non-first stage, one per partition.
    let mut stage_inputs: Vec<Vec<(Sender<Frame>, Receiver<Frame>)>> = Vec::new();
    for nodes in assignments.iter().skip(1) {
        stage_inputs.push((0..nodes.len()).map(|_| bounded(spec.channel_capacity)).collect());
    }

    let n_tasks: usize = assignments.iter().map(Vec::len).sum();
    let latch = Arc::new(Latch::new(n_tasks));
    let mut tasks = Vec::new();
    let dispatch_cost = cluster.config().task_dispatch_cost;
    let start_latency = cluster.config().task_start_latency;
    let tasks_active: Option<Arc<Gauge>> =
        cluster.metrics().map(|m| m.gauge("hyracks/tasks_active"));

    for (s, stage) in spec.stages.iter().enumerate() {
        let nodes = &assignments[s];
        for (p, &node) in nodes.iter().enumerate() {
            // CC-side serial dispatch.
            if !dispatch_cost.is_zero() {
                std::thread::sleep(dispatch_cost);
            }
            let input = if s == 0 {
                TaskInput::Source
            } else {
                TaskInput::Channel(stage_inputs[s - 1][p].1.clone())
            };
            let output = if s + 1 == spec.stages.len() {
                TaskOutput::Terminal
            } else {
                let downstream: Vec<Sender<Frame>> = match stage.connector {
                    ConnectorSpec::OneToOne => vec![stage_inputs[s][p].0.clone()],
                    _ => stage_inputs[s].iter().map(|(tx, _)| tx.clone()).collect(),
                };
                TaskOutput::Connector(stage.connector.clone(), downstream)
            };
            let ctx = TaskContext {
                job_name: Arc::from(spec.name.as_str()),
                stage: s,
                partition: p,
                partitions: nodes.len(),
                node,
                cluster: cluster.clone(),
                param: param.clone(),
            };
            let factory = stage.factory.clone();
            let frame_capacity = spec.frame_capacity;
            let thread_name = format!("{}#{instance}/{}/{p}", spec.name, stage.name);
            let active_gauge = tasks_active.clone();
            let task_latch = latch.clone();
            let handle = std::thread::Builder::new()
                .name(thread_name)
                .spawn(move || -> Result<()> {
                    // Decremented when the task exits, error paths and
                    // panics included, so `wait_timeout` waiters wake.
                    let _done = LatchGuard::new(task_latch);
                    let _active = active_gauge.map(ActiveTask::enter);
                    if !start_latency.is_zero() {
                        std::thread::sleep(start_latency);
                    }
                    let mut ctx = ctx;
                    let mut op = factory(&ctx);
                    op.open(&mut ctx)?;
                    match output {
                        TaskOutput::Terminal => {
                            let mut sink = TerminalSink;
                            run_task(&mut *op, input, &mut sink, &mut ctx)?;
                            op.close(&mut sink, &mut ctx)
                        }
                        TaskOutput::Connector(conn, downstream) => {
                            let mut sink = conn.instantiate(p, downstream, frame_capacity);
                            run_task(&mut *op, input, &mut sink, &mut ctx)?;
                            op.close(&mut sink, &mut ctx)?;
                            sink.flush()
                            // Senders drop here, closing downstream inputs.
                        }
                    }
                })
                .map_err(|e| HyracksError::Config(format!("spawn failed: {e}")))?;
            tasks.push(handle);
        }
        // Drop our copies of this stage's input endpoints so channels
        // close when all upstream tasks finish.
    }
    drop(stage_inputs);

    Ok(JobHandle { name: spec.name.clone(), inner: HandleInner::Spawned { tasks, latch } })
}

fn run_task(
    op: &mut dyn crate::operator::Operator,
    input: TaskInput,
    sink: &mut dyn FrameSink,
    ctx: &mut TaskContext,
) -> Result<()> {
    match input {
        TaskInput::Source => op.run_source(sink, ctx),
        TaskInput::Channel(rx) => {
            for frame in rx.iter() {
                // A task on a dead node stops at the next frame
                // boundary instead of silently continuing to compute.
                if !ctx.cluster.node(ctx.node).is_alive() {
                    return Err(HyracksError::NodeDown(ctx.node));
                }
                op.next_frame(frame, sink, ctx)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::ConnectorSpec;
    use crate::operator::{FnOperator, FnSource, Operator};
    use parking_lot::Mutex;

    /// source (1 node) -> round robin -> doubler (all nodes) -> collect
    #[test]
    fn three_stage_pipeline() {
        let cluster = Cluster::with_nodes(3);
        let collected: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
        let collected_in_job = collected.clone();

        let spec = JobSpec::new("test")
            .stage_on(
                "source",
                vec![0],
                ConnectorSpec::RoundRobin,
                Arc::new(|_ctx: &TaskContext| {
                    Box::new(FnSource(|out: &mut dyn FrameSink, _ctx: &mut TaskContext| {
                        out.push(Frame::from_records((0..100).map(Value::Int).collect()))
                    })) as Box<dyn Operator>
                }),
            )
            .stage(
                "double",
                ConnectorSpec::OneToOne,
                Arc::new(|_ctx: &TaskContext| {
                    Box::new(FnOperator(
                        |f: Frame, out: &mut dyn FrameSink, _ctx: &mut TaskContext| {
                            let doubled: Vec<Value> = f
                                .records()
                                .iter()
                                .map(|v| Value::Int(v.as_int().unwrap() * 2))
                                .collect();
                            out.push(Frame::from_records(doubled))
                        },
                    )) as Box<dyn Operator>
                }),
            )
            .stage(
                "collect",
                ConnectorSpec::OneToOne,
                Arc::new(move |_ctx: &TaskContext| {
                    let collected = collected_in_job.clone();
                    Box::new(FnOperator(
                        move |f: Frame, _out: &mut dyn FrameSink, _ctx: &mut TaskContext| {
                            collected
                                .lock()
                                .extend(f.records().iter().map(|v| v.as_int().unwrap()));
                            Ok(())
                        },
                    )) as Box<dyn Operator>
                }),
            );

        run_job(&cluster, &spec, Value::Missing).unwrap().join().unwrap();
        let mut got = collected.lock().clone();
        got.sort_unstable();
        let want: Vec<i64> = (0..100).map(|i| i * 2).collect();
        assert_eq!(got, want);
        assert_eq!(cluster.jobs_started(), 1);
    }

    #[test]
    fn operator_error_propagates() {
        let cluster = Cluster::with_nodes(2);
        let spec = JobSpec::new("failing").stage(
            "boom",
            ConnectorSpec::OneToOne,
            Arc::new(|_ctx: &TaskContext| {
                Box::new(FnSource(|_out: &mut dyn FrameSink, ctx: &mut TaskContext| {
                    if ctx.partition == 1 {
                        Err(HyracksError::Operator("boom".into()))
                    } else {
                        Ok(())
                    }
                })) as Box<dyn Operator>
            }),
        );
        let err = run_job(&cluster, &spec, Value::Missing).unwrap().join().unwrap_err();
        assert!(matches!(err, HyracksError::Operator(_)));
    }

    #[test]
    fn empty_job_rejected() {
        let cluster = Cluster::with_nodes(1);
        assert!(run_job(&cluster, &JobSpec::new("empty"), Value::Missing).is_err());
    }

    #[test]
    fn mismatched_one_to_one_rejected() {
        let cluster = Cluster::with_nodes(2);
        let noop: crate::job::OperatorFactory = Arc::new(|_ctx: &TaskContext| {
            Box::new(FnSource(|_: &mut dyn FrameSink, _: &mut TaskContext| Ok(())))
                as Box<dyn Operator>
        });
        let sink: crate::job::OperatorFactory = Arc::new(|_ctx: &TaskContext| {
            Box::new(FnOperator(|_: Frame, _: &mut dyn FrameSink, _: &mut TaskContext| Ok(())))
                as Box<dyn Operator>
        });
        let spec = JobSpec::new("bad")
            .stage_on("src", vec![0], ConnectorSpec::OneToOne, noop)
            .stage("snk", ConnectorSpec::OneToOne, sink);
        assert!(run_job(&cluster, &spec, Value::Missing).is_err());
    }

    #[test]
    fn unpinned_stages_avoid_dead_nodes() {
        let cluster = Cluster::with_nodes(4);
        cluster.kill_node(2);
        let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let spec = JobSpec::new("replan").stage(
            "src",
            ConnectorSpec::OneToOne,
            Arc::new(move |_ctx: &TaskContext| {
                let seen = seen2.clone();
                Box::new(FnSource(move |_: &mut dyn FrameSink, ctx: &mut TaskContext| {
                    seen.lock().push(ctx.node);
                    Ok(())
                })) as Box<dyn Operator>
            }),
        );
        run_job(&cluster, &spec, Value::Missing).unwrap().join().unwrap();
        let mut nodes = seen.lock().clone();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 3], "dead node 2 must get no tasks");
    }

    #[test]
    fn pinned_stage_on_dead_node_rejected() {
        let cluster = Cluster::with_nodes(2);
        cluster.kill_node(1);
        let noop: crate::job::OperatorFactory = Arc::new(|_ctx: &TaskContext| {
            Box::new(FnSource(|_: &mut dyn FrameSink, _: &mut TaskContext| Ok(())))
                as Box<dyn Operator>
        });
        let spec = JobSpec::new("pinned").stage_on("src", vec![1], ConnectorSpec::OneToOne, noop);
        let err = match run_job(&cluster, &spec, Value::Missing) {
            Err(e) => e,
            Ok(_) => panic!("job on a dead pinned node must be rejected"),
        };
        assert_eq!(err, HyracksError::NodeDown(1));
        cluster.restore_node(1);
        assert!(run_job(&cluster, &spec, Value::Missing).unwrap().join().is_ok());
    }

    #[test]
    fn param_reaches_tasks() {
        let cluster = Cluster::with_nodes(1);
        let seen: Arc<Mutex<Option<Value>>> = Arc::new(Mutex::new(None));
        let seen2 = seen.clone();
        let spec = JobSpec::new("param").stage(
            "src",
            ConnectorSpec::OneToOne,
            Arc::new(move |_ctx: &TaskContext| {
                let seen = seen2.clone();
                Box::new(FnSource(move |_: &mut dyn FrameSink, ctx: &mut TaskContext| {
                    *seen.lock() = Some((*ctx.param).clone());
                    Ok(())
                })) as Box<dyn Operator>
            }),
        );
        run_job(&cluster, &spec, Value::Int(42)).unwrap().join().unwrap();
        assert_eq!(seen.lock().clone(), Some(Value::Int(42)));
    }
}

//! # idea-hyracks — a partitioned parallel dataflow runtime
//!
//! Hyracks is "a partitioned parallel computation platform that provides
//! runtime execution support for AsterixDB" (paper §2.2). Queries become
//! *jobs*: DAGs of **operators** (computation) and **connectors** (data
//! routing). Data flows in **frames** containing multiple records.
//!
//! This crate reproduces the pieces the ingestion framework needs:
//!
//! * [`frame::Frame`] — a batch of ADM records in flight;
//! * [`operator::Operator`] — push-based operators
//!   (`open` / `next_frame` / `close`), plus source operators that
//!   generate their own data;
//! * [`connector::ConnectorSpec`] — one-to-one, round-robin,
//!   hash-partition, and broadcast routing between stages;
//! * [`job::JobSpec`] — a linear pipeline of stages, each instantiated
//!   once per assigned node;
//! * [`cluster::Cluster`] — the simulated AsterixDB cluster: one Cluster
//!   Controller, N Node Controllers, per-node partition-holder managers.
//!   Physical transport is bounded in-process channels (see DESIGN.md on
//!   the hardware substitution);
//! * [`holder`] — **partition holders** (paper §5.3): active and passive
//!   guarded queues that let *different jobs* exchange frames;
//! * [`predeploy`] — **parameterized predeployed jobs** (paper §5.1):
//!   compile once, cache the job spec on the cluster, invoke repeatedly
//!   with new parameters;
//! * [`pool`] — the **resident task pool** behind a predeployed job:
//!   one parked worker thread per (stage, partition), persistent
//!   channels, so an invocation is one activation message instead of a
//!   round of thread spawns.

pub mod cluster;
pub mod collector;
pub mod connector;
pub mod error;
pub mod executor;
pub mod frame;
pub mod holder;
pub mod job;
pub mod operator;
pub mod pool;
pub mod predeploy;

pub use cluster::{Cluster, ClusterConfig};
pub use collector::{CollectorOp, ResultChannel, ResultMsg};
pub use connector::ConnectorSpec;
pub use error::HyracksError;
pub use executor::{run_job, JobHandle};
pub use frame::Frame;
pub use holder::{Batch, HolderMode, PartitionHolder, PartitionHolderManager};
pub use job::{JobSpec, StageSpec, TaskContext};
pub use operator::{FnOperator, FrameSink, Operator};
pub use pool::TaskPool;
pub use predeploy::{DeployedJobId, DeployedJobRegistry};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, HyracksError>;

//! Property tests for the runtime: connectors conserve and route
//! records correctly under arbitrary frame shapes, and jobs deliver
//! exactly once.

use std::sync::Arc;

use idea_adm::Value;
use idea_hyracks::{
    run_job, Cluster, ConnectorSpec, Frame, FrameSink, JobSpec, Operator, TaskContext,
};
use parking_lot::Mutex;
use proptest::prelude::*;

/// Runs a two-stage job: a single-node source emitting `records` in
/// frames of `frame_sizes`, connected by `connector` to collectors on
/// every node. Returns the records each partition received.
fn route(nodes: usize, connector: ConnectorSpec, records: Vec<i64>, chunk: usize) -> Vec<Vec<i64>> {
    let cluster = Cluster::with_nodes(nodes);
    let received: Arc<Mutex<Vec<Vec<i64>>>> = Arc::new(Mutex::new(vec![Vec::new(); nodes]));
    let recv2 = received.clone();

    struct Src {
        records: Vec<i64>,
        chunk: usize,
    }
    impl Operator for Src {
        fn next_frame(
            &mut self,
            _f: Frame,
            _o: &mut dyn FrameSink,
            _c: &mut TaskContext,
        ) -> idea_hyracks::Result<()> {
            unreachable!()
        }
        fn run_source(
            &mut self,
            out: &mut dyn FrameSink,
            _ctx: &mut TaskContext,
        ) -> idea_hyracks::Result<()> {
            for chunk in self.records.chunks(self.chunk.max(1)) {
                let vals = chunk.iter().map(|i| Value::object([("id", Value::Int(*i))])).collect();
                out.push(Frame::from_records(vals))?;
            }
            Ok(())
        }
    }

    let records2 = records.clone();
    let spec = JobSpec::new("route")
        .stage_on(
            "src",
            vec![0],
            connector,
            Arc::new(move |_: &TaskContext| {
                Box::new(Src { records: records2.clone(), chunk }) as Box<dyn Operator>
            }),
        )
        .stage(
            "collect",
            ConnectorSpec::OneToOne,
            Arc::new(move |_: &TaskContext| {
                let recv = recv2.clone();
                Box::new(idea_hyracks::FnOperator(
                    move |f: Frame, _: &mut dyn FrameSink, ctx: &mut TaskContext| {
                        let ids = f
                            .records()
                            .iter()
                            .map(|r| r.as_object().unwrap().get("id").unwrap().as_int().unwrap());
                        recv.lock()[ctx.partition].extend(ids);
                        Ok(())
                    },
                )) as Box<dyn Operator>
            }),
        );
    run_job(&cluster, &spec, Value::Missing).unwrap().join().unwrap();
    let out = received.lock().clone();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round-robin conserves records and balances within one record.
    #[test]
    fn round_robin_conserves_and_balances(
        records in prop::collection::vec(any::<i64>(), 0..200),
        nodes in 1usize..5,
        chunk in 1usize..40,
    ) {
        let parts = route(nodes, ConnectorSpec::RoundRobin, records.clone(), chunk);
        let mut all: Vec<i64> = parts.iter().flatten().copied().collect();
        let mut want = records.clone();
        all.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(all, want, "conservation");
        let max = parts.iter().map(Vec::len).max().unwrap_or(0);
        let min = parts.iter().map(Vec::len).min().unwrap_or(0);
        prop_assert!(max - min <= 1, "balance: {:?}", parts.iter().map(Vec::len).collect::<Vec<_>>());
    }

    /// Hash partitioning conserves records and is key-consistent.
    #[test]
    fn hash_partition_conserves_and_groups(
        records in prop::collection::vec(-20i64..20, 0..200),
        nodes in 1usize..5,
        chunk in 1usize..40,
    ) {
        let parts = route(nodes, ConnectorSpec::hash_on_field("id"), records.clone(), chunk);
        let mut all: Vec<i64> = parts.iter().flatten().copied().collect();
        let mut want = records.clone();
        all.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(all, want, "conservation");
        for key in -20i64..20 {
            let homes = parts.iter().filter(|p| p.contains(&key)).count();
            prop_assert!(homes <= 1, "key {} appears on {} partitions", key, homes);
        }
    }

    /// Broadcast delivers every record to every partition, in order.
    #[test]
    fn broadcast_total_delivery(
        records in prop::collection::vec(any::<i64>(), 0..120),
        nodes in 1usize..5,
        chunk in 1usize..40,
    ) {
        let parts = route(nodes, ConnectorSpec::Broadcast, records.clone(), chunk);
        for p in &parts {
            prop_assert_eq!(p, &records);
        }
    }
}

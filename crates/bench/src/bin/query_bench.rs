//! `scripts/bench.sh` entry point: measures parallel partitioned query
//! execution against the sequential evaluator and writes
//! `BENCH_query.json`.
//!
//! One 4-partition tweet dataset, three analytical queries (a selective
//! scan, a scan + GROUP BY aggregation, and a grouped reference join),
//! each parsed **once** and executed repeatedly through a
//! [`Session`] in both execution modes — so the parallel runs after the
//! first reuse a predeployed job and pay one activation, exactly like
//! repeated queries in the paper's analytical workloads.
//!
//! `--smoke` (or `IDEA_BENCH_SMOKE=1`) shrinks the dataset and the
//! iteration counts so CI can run the whole thing in seconds. The full
//! run asserts the scan/GROUP BY query's parallel speedup (the PR's
//! acceptance bar).

use std::time::{Duration, Instant};

use idea_adm::Value;
use idea_hyracks::Cluster;
use idea_query::ast::Statement;
use idea_query::{Catalog, ExecMode, Session};

const NODES: usize = 4;
const COUNTRIES: &[&str] = &["US", "DE", "FR", "JP", "BR", "IN", "GB", "AU"];

/// Deterministic splitmix64 (no RNG dependency in the bin target).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn setup(rows: u64) -> Session {
    let cluster = Cluster::with_nodes(NODES);
    let catalog = Catalog::new(NODES);
    let session = Session::with_cluster(catalog, cluster);
    session
        .run_script(
            r#"
            CREATE TYPE TweetType AS OPEN { id: int64, country: string, score: int64, text: string };
            CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
            CREATE TYPE WordType AS OPEN { wid: int64, country: string, word: string };
            CREATE DATASET Words(WordType) PRIMARY KEY wid;
            "#,
        )
        .expect("DDL");
    let tweets = session.catalog().dataset("Tweets").expect("Tweets");
    let mut seed = 42u64;
    for id in 0..rows as i64 {
        let r = splitmix(&mut seed);
        let country = COUNTRIES[(r % COUNTRIES.len() as u64) as usize];
        let score = ((r >> 8) % 100) as i64;
        let topic = (r >> 16) % 8;
        tweets
            .insert(Value::object([
                ("id", Value::Int(id)),
                ("country", Value::str(country)),
                ("score", Value::Int(score)),
                ("text", Value::str(format!("tweet {id} from {country} mentions topic{topic}"))),
            ]))
            .expect("insert");
    }
    let words = session.catalog().dataset("Words").expect("Words");
    for wid in 0..16i64 {
        let r = splitmix(&mut seed);
        words
            .insert(Value::object([
                ("wid", Value::Int(wid)),
                ("country", Value::str(COUNTRIES[(r % COUNTRIES.len() as u64) as usize])),
                ("word", Value::str(format!("topic{}", wid % 8))),
            ]))
            .expect("insert word");
    }
    session
}

#[derive(Debug)]
struct LatencyStats {
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
}

fn stats(samples: &[Duration]) -> LatencyStats {
    let mut us: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e6).collect();
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = us.iter().sum::<f64>() / us.len().max(1) as f64;
    LatencyStats { mean_us: mean, p50_us: percentile(&us, 0.50), p99_us: percentile(&us, 0.99) }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 * q).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

struct QueryResult {
    name: &'static str,
    iterations: usize,
    rows_out: usize,
    sequential: LatencyStats,
    parallel: LatencyStats,
    speedup: f64,
}

/// Times `iterations` warm executions of one parsed statement in each
/// mode. The statement is parsed once, so the parallel runs share one
/// block id — and therefore one predeployed job.
fn measure_query(
    session: &Session,
    name: &'static str,
    sql: &str,
    iterations: usize,
) -> QueryResult {
    let stmts = idea_query::parser::parse_statements(sql).expect("parse");
    let stmt: &Statement = &stmts[0];
    let warmup = (iterations / 10).max(2);

    let run_mode = |mode: ExecMode| -> (Vec<Duration>, usize) {
        session.set_mode(mode);
        let mut samples = Vec::with_capacity(iterations);
        let mut rows_out = 0;
        for i in 0..warmup + iterations {
            let t = Instant::now();
            let v = session.execute(stmt).expect("query").into_value().expect("value");
            if i >= warmup {
                samples.push(t.elapsed());
            }
            rows_out = v.as_array().map(<[_]>::len).unwrap_or(0);
        }
        (samples, rows_out)
    };

    let (seq_samples, seq_rows) = run_mode(ExecMode::Sequential);
    let (par_samples, par_rows) = run_mode(ExecMode::Parallel);
    assert_eq!(seq_rows, par_rows, "{name}: modes disagree on row count");

    let sequential = stats(&seq_samples);
    let parallel = stats(&par_samples);
    let speedup = sequential.mean_us / parallel.mean_us;
    QueryResult { name, iterations, rows_out: seq_rows, sequential, parallel, speedup }
}

fn json_latency(s: &LatencyStats) -> String {
    format!(
        "{{\"mean_us\": {:.2}, \"p50_us\": {:.2}, \"p99_us\": {:.2}}}",
        s.mean_us, s.p50_us, s.p99_us
    )
}

fn json_query(r: &QueryResult) -> String {
    format!(
        concat!(
            "{{\"query\": \"{}\", \"iterations\": {}, \"rows_out\": {}, ",
            "\"sequential\": {}, \"parallel\": {}, \"speedup\": {:.2}}}"
        ),
        r.name,
        r.iterations,
        r.rows_out,
        json_latency(&r.sequential),
        json_latency(&r.parallel),
        r.speedup
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("IDEA_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let (rows, iterations) = if smoke { (20_000u64, 10) } else { (200_000u64, 30) };

    eprintln!("== parallel query ({rows} rows, {NODES} partitions, {iterations} iterations) ==");
    let session = setup(rows);

    let queries: &[(&'static str, &str)] = &[
        (
            "scan_filter",
            r#"SELECT VALUE t.id FROM Tweets t
               WHERE t.score < 10 AND contains(t.text, "topic3")"#,
        ),
        (
            "scan_group_by",
            r#"SELECT t.country AS country, count(*) AS n, avg(t.score) AS mean
               FROM Tweets t
               WHERE contains(t.text, "topic3")
               GROUP BY t.country ORDER BY t.country"#,
        ),
        (
            "grouped_join",
            r#"SELECT w.word AS word, count(*) AS n
               FROM Tweets t, Words w
               WHERE t.country = w.country AND contains(t.text, w.word) AND t.score < 50
               GROUP BY w.word ORDER BY w.word"#,
        ),
    ];
    let results: Vec<QueryResult> = queries
        .iter()
        .map(|(name, sql)| measure_query(&session, name, sql, iterations))
        .collect();
    for r in &results {
        eprintln!(
            "{:<14} seq mean {:>9.1}us  par mean {:>9.1}us  speedup {:.2}x  ({} rows out)",
            r.name, r.sequential.mean_us, r.parallel.mean_us, r.speedup, r.rows_out
        );
    }

    let out = std::env::args().nth(1).filter(|a| a != "--smoke");
    let path = out.unwrap_or_else(|| "BENCH_query.json".to_string());
    let body: Vec<String> = results.iter().map(|r| format!("    {}", json_query(r))).collect();
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let json = format!(
        "{{\n  \"smoke\": {},\n  \"nodes\": {},\n  \"rows\": {},\n  \"cores\": {},\n  \"queries\": [\n{}\n  ]\n}}\n",
        smoke,
        NODES,
        rows,
        cores,
        body.join(",\n")
    );
    std::fs::write(&path, json).expect("write BENCH_query.json");
    eprintln!("wrote {path}");

    // The PR's acceptance bar: on the full run, the partitioned path
    // must beat the sequential evaluator on the scan/GROUP BY query.
    // Only meaningful with real parallelism: on a single-core host the
    // partitioned job pays its exchange/merge machinery with no extra
    // CPU to spend it on, so the bar is recorded but not enforced.
    if !smoke && cores >= 2 {
        let gb = results.iter().find(|r| r.name == "scan_group_by").expect("scan_group_by");
        assert!(
            gb.speedup >= 1.1,
            "parallel scan/GROUP BY speedup {:.2}x is below the 1.1x acceptance bar",
            gb.speedup
        );
    } else if !smoke {
        eprintln!("single-core host: parallel-vs-sequential bar recorded, not enforced");
    }
}

//! `scripts/bench.sh` entry point: measures the execution-model change
//! (resident task pool vs spawn-per-run) and writes `BENCH_ingest.json`.
//!
//! Two sections:
//!
//! 1. **Invoke overhead** — the same two-stage job invoked repeatedly
//!    as a predeployed (pooled) job and as spawn-per-run `run_job`,
//!    reporting mean / p50 / p99 latency per invocation and the
//!    pooled-vs-spawned speedup (the PR's ≥2× acceptance bar).
//! 2. **Ingestion** — a fixed-seed end-to-end enrichment run in both
//!    predeployed and spawn-per-run modes, reporting records/sec and
//!    the per-batch invoke latency p50 / p99.
//!
//! `--smoke` (or `IDEA_BENCH_SMOKE=1`) shrinks iteration counts and the
//! tweet stream so CI can run the whole thing in seconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use idea_adm::Value;
use idea_bench::EnrichmentRun;
use idea_hyracks::operator::{FnOperator, FnSource};
use idea_hyracks::{
    run_job, Cluster, ConnectorSpec, Frame, FrameSink, JobSpec, Operator, TaskContext,
};
use idea_workload::WorkloadScale;

/// Same shape as the `invoke_overhead` criterion bench: source →
/// round-robin → counting sink.
fn emit_count_spec(records: usize, counter: Arc<AtomicU64>) -> JobSpec {
    JobSpec::new("invoke-overhead")
        .stage(
            "emit",
            ConnectorSpec::RoundRobin,
            Arc::new(move |_ctx: &TaskContext| {
                Box::new(FnSource(move |sink: &mut dyn FrameSink, _ctx: &mut TaskContext| {
                    sink.push(Frame::from_records((0..records as i64).map(Value::Int).collect()))
                })) as Box<dyn Operator>
            }),
        )
        .stage(
            "count",
            ConnectorSpec::OneToOne,
            Arc::new(move |_ctx: &TaskContext| {
                let counter = counter.clone();
                Box::new(FnOperator(
                    move |f: Frame, _sink: &mut dyn FrameSink, _ctx: &mut TaskContext| {
                        counter.fetch_add(f.len() as u64, Ordering::Relaxed);
                        Ok(())
                    },
                )) as Box<dyn Operator>
            }),
        )
}

#[derive(Debug)]
struct LatencyStats {
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
}

fn stats(samples: &[Duration]) -> LatencyStats {
    let mut us: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e6).collect();
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = us.iter().sum::<f64>() / us.len().max(1) as f64;
    LatencyStats { mean_us: mean, p50_us: percentile(&us, 0.50), p99_us: percentile(&us, 0.99) }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 * q).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

struct InvokeOverhead {
    iterations: usize,
    tasks: usize,
    pooled: LatencyStats,
    spawned: LatencyStats,
    speedup: f64,
}

/// Times `iterations` warm invocations of the same job through the
/// resident pool and through spawn-per-run.
fn measure_invoke_overhead(iterations: usize) -> InvokeOverhead {
    const NODES: usize = 4;
    const RECORDS: usize = 64;
    let warmup = (iterations / 10).max(3);

    let cluster = Cluster::with_nodes(NODES);
    let counter = Arc::new(AtomicU64::new(0));
    let id = cluster.deploy_job(emit_count_spec(RECORDS, counter.clone()));
    let mut pooled = Vec::with_capacity(iterations);
    for i in 0..warmup + iterations {
        let t = Instant::now();
        cluster.invoke_deployed(id, Value::Missing).unwrap().join().unwrap();
        if i >= warmup {
            pooled.push(t.elapsed());
        }
    }

    let spec = emit_count_spec(RECORDS, counter);
    let mut spawned = Vec::with_capacity(iterations);
    for i in 0..warmup + iterations {
        let t = Instant::now();
        run_job(&cluster, &spec, Value::Missing).unwrap().join().unwrap();
        if i >= warmup {
            spawned.push(t.elapsed());
        }
    }

    let pooled = stats(&pooled);
    let spawned = stats(&spawned);
    let speedup = spawned.mean_us / pooled.mean_us;
    InvokeOverhead { iterations, tasks: NODES * 2, pooled, spawned, speedup }
}

struct UndeployOverhead {
    iterations: usize,
    workers: usize,
    sync: LatencyStats,
    deferred: LatencyStats,
    speedup: f64,
}

/// Times what the feed driver pays to tear a predeployed job down —
/// the synchronous `undeploy_job` (joins every pool worker before
/// returning) against `undeploy_job_deferred` (sends shutdown, hands
/// the joins to a reaper thread). This sits on the feed's timed window
/// once per feed run, so it is the direct measure of the deferred-
/// teardown fix.
fn measure_undeploy(iterations: usize) -> UndeployOverhead {
    const NODES: usize = 6;
    let cluster = Cluster::with_nodes(NODES);
    let counter = Arc::new(AtomicU64::new(0));
    let mut sync = Vec::with_capacity(iterations);
    let mut deferred = Vec::with_capacity(iterations);
    let mut workers = 0;
    for _ in 0..iterations {
        let id = cluster.deploy_job(emit_count_spec(16, counter.clone()));
        workers = cluster.deployed_jobs().resident_workers();
        cluster.invoke_deployed(id, Value::Missing).unwrap().join().unwrap();
        let t = Instant::now();
        cluster.undeploy_job(id);
        sync.push(t.elapsed());

        let id = cluster.deploy_job(emit_count_spec(16, counter.clone()));
        cluster.invoke_deployed(id, Value::Missing).unwrap().join().unwrap();
        let t = Instant::now();
        cluster.undeploy_job_deferred(id);
        deferred.push(t.elapsed());
        // Wait for the reaper so the next deploy's spawns don't contend
        // with exiting workers (that interference is real, but it would
        // land in the *deploy* sample, muddying both columns).
        while cluster.deployed_jobs().resident_workers() > 0 {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    let sync = stats(&sync);
    let deferred = stats(&deferred);
    let speedup = sync.mean_us / deferred.mean_us;
    UndeployOverhead { iterations, workers, sync, deferred, speedup }
}

struct IngestResult {
    mode: &'static str,
    tweets: u64,
    records_stored: u64,
    elapsed_ms: f64,
    records_per_sec: f64,
    computing_jobs: u64,
    batch: LatencyStats,
    /// Per-repeat throughput, ascending — the reported run is the
    /// median of these.
    samples_rps: Vec<f64>,
}

/// Fixed-seed end-to-end ingestion (no UDF, decoupled pipeline); the
/// per-batch durations are the computing job's invoke latencies.
///
fn run_ingestion_once(tweets: u64, predeploy: bool) -> IngestResult {
    let mut run = EnrichmentRun::new(None, tweets, WorkloadScale::scaled(0.01));
    run.predeploy = predeploy;
    // Cut batches so the run spans ~12 computing-job invocations —
    // enough samples for the p50/p99 invoke-latency columns.
    run.batch_size = (tweets / (run.nodes as u64 * 12)).max(16);
    let report = idea_bench::run_enrichment(&run);
    IngestResult {
        mode: if predeploy { "predeployed" } else { "spawn_per_run" },
        tweets,
        records_stored: report.records_stored,
        elapsed_ms: report.elapsed.as_secs_f64() * 1e3,
        records_per_sec: report.throughput,
        computing_jobs: report.computing_jobs,
        batch: stats(&report.batch_durations),
        samples_rps: Vec::new(),
    }
}

fn median_run(mut results: Vec<IngestResult>) -> IngestResult {
    results.sort_by(|a, b| a.records_per_sec.partial_cmp(&b.records_per_sec).unwrap());
    let samples: Vec<f64> = results.iter().map(|r| r.records_per_sec).collect();
    let mut median = results.swap_remove(results.len() / 2);
    median.samples_rps = samples;
    median
}

/// One end-to-end run is a single wall-clock sample and each run stands
/// up a fresh engine (dozens of thread spawns), so scheduler noise on a
/// small host easily swamps a ~15% effect. Run `repeats` times per mode
/// — *interleaved*, so slow host drift lands on both modes equally —
/// and report the median-throughput run of each, with every sample in
/// the JSON.
fn measure_ingestion(tweets: u64, repeats: usize) -> (IngestResult, IngestResult) {
    let mut pooled = Vec::with_capacity(repeats);
    let mut spawned = Vec::with_capacity(repeats);
    for _ in 0..repeats.max(1) {
        pooled.push(run_ingestion_once(tweets, true));
        spawned.push(run_ingestion_once(tweets, false));
    }
    (median_run(pooled), median_run(spawned))
}

fn json_latency(s: &LatencyStats) -> String {
    format!(
        "{{\"mean_us\": {:.2}, \"p50_us\": {:.2}, \"p99_us\": {:.2}}}",
        s.mean_us, s.p50_us, s.p99_us
    )
}

fn json_ingest(r: &IngestResult) -> String {
    format!(
        concat!(
            "{{\"mode\": \"{}\", \"tweets\": {}, \"records_stored\": {}, ",
            "\"elapsed_ms\": {:.2}, \"records_per_sec\": {:.1}, ",
            "\"computing_jobs\": {}, \"invoke_latency\": {}, ",
            "\"throughput_samples\": [{}]}}"
        ),
        r.mode,
        r.tweets,
        r.records_stored,
        r.elapsed_ms,
        r.records_per_sec,
        r.computing_jobs,
        json_latency(&r.batch),
        r.samples_rps.iter().map(|s| format!("{s:.1}")).collect::<Vec<_>>().join(", ")
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("IDEA_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let (iterations, tweets, repeats) = if smoke { (50, 1_200, 2) } else { (300, 10_000, 7) };

    eprintln!("== invoke overhead ({iterations} iterations) ==");
    let overhead = measure_invoke_overhead(iterations);
    eprintln!(
        "pooled   mean {:.1}us  p50 {:.1}us  p99 {:.1}us",
        overhead.pooled.mean_us, overhead.pooled.p50_us, overhead.pooled.p99_us
    );
    eprintln!(
        "spawned  mean {:.1}us  p50 {:.1}us  p99 {:.1}us",
        overhead.spawned.mean_us, overhead.spawned.p50_us, overhead.spawned.p99_us
    );
    eprintln!("speedup  {:.2}x", overhead.speedup);

    eprintln!("== undeploy overhead ({} iterations) ==", iterations / 10);
    let undeploy = measure_undeploy(iterations / 10);
    eprintln!(
        "sync     mean {:.1}us  p50 {:.1}us  p99 {:.1}us  ({} workers joined inline)",
        undeploy.sync.mean_us, undeploy.sync.p50_us, undeploy.sync.p99_us, undeploy.workers
    );
    eprintln!(
        "deferred mean {:.1}us  p50 {:.1}us  p99 {:.1}us  (joins on reaper thread)",
        undeploy.deferred.mean_us, undeploy.deferred.p50_us, undeploy.deferred.p99_us
    );
    eprintln!("speedup  {:.2}x", undeploy.speedup);

    eprintln!("== ingestion ({tweets} tweets, seed 42, interleaved median of {repeats}) ==");
    let (pooled_run, spawned_run) = measure_ingestion(tweets, repeats);
    for r in [&pooled_run, &spawned_run] {
        eprintln!(
            "{:<14} {:>9.1} rec/s  invoke p50 {:.1}us p99 {:.1}us  ({} jobs)",
            r.mode, r.records_per_sec, r.batch.p50_us, r.batch.p99_us, r.computing_jobs
        );
    }

    let out = std::env::args().nth(1).filter(|a| a != "--smoke");
    let path = out.unwrap_or_else(|| "BENCH_ingest.json".to_string());
    let json = format!(
        concat!(
            "{{\n",
            "  \"smoke\": {},\n",
            "  \"invoke_overhead\": {{\n",
            "    \"iterations\": {}, \"tasks\": {},\n",
            "    \"pooled\": {},\n",
            "    \"spawn_per_run\": {},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"undeploy_overhead\": {{\n",
            "    \"iterations\": {}, \"workers\": {},\n",
            "    \"sync\": {},\n",
            "    \"deferred\": {},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"ingestion\": [\n    {},\n    {}\n  ]\n",
            "}}\n"
        ),
        smoke,
        overhead.iterations,
        overhead.tasks,
        json_latency(&overhead.pooled),
        json_latency(&overhead.spawned),
        overhead.speedup,
        undeploy.iterations,
        undeploy.workers,
        json_latency(&undeploy.sync),
        json_latency(&undeploy.deferred),
        undeploy.speedup,
        json_ingest(&pooled_run),
        json_ingest(&spawned_run)
    );
    std::fs::write(&path, json).expect("write BENCH_ingest.json");
    eprintln!("wrote {path}");

    // The PR's acceptance bar: predeployed invocation must be at least
    // 2x cheaper than spawn-per-run on the same job.
    assert!(
        overhead.speedup >= 2.0,
        "pooled invoke speedup {:.2}x is below the 2x acceptance bar",
        overhead.speedup
    );
}

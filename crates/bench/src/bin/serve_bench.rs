//! `scripts/bench.sh` entry point: load-tests the network serving
//! layer and writes `BENCH_serve.json`.
//!
//! Tiers of concurrent TCP connections (100 / 1000 / 5000 on a full
//! run) hammer one server with a validated streaming query. Every
//! response is checked against an oracle computed up front — the run
//! fails on a single wrong result. Shed responses (rate-limit /
//! overload / drain `E` frames) are legitimate backpressure and are
//! reported as a shed rate per tier alongside p50/p99 latency.
//!
//! The bench also asserts the streaming contract directly: the bench
//! query through [`Session::stream_statement`] — the exact call the
//! server's workers make — must report a peak resident row count no
//! larger than one batch, i.e. the server never materializes a
//! streamable result.
//!
//! `--smoke` (or `IDEA_BENCH_SMOKE=1`) shrinks the tiers for CI.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use idea_adm::Value;
use idea_core::IngestionEngine;
use idea_query::parser::parse_statements;
use idea_query::SessionConfig;
use idea_serve::{AdmissionConfig, Client, Server, ServerConfig};

const ROWS: i64 = 5_000;
/// The benchmark query: a streamable selective scan (no sort, group,
/// or limit), so the server streams it batch by batch.
const QUERY: &str = "SELECT VALUE t.id FROM Tweets t WHERE t.score < 20";
const BATCH_SIZE: usize = 64;

fn setup_engine() -> Arc<IngestionEngine> {
    let engine = IngestionEngine::with_nodes(2);
    engine
        .run_sqlpp(
            r#"
            CREATE TYPE TweetType AS OPEN { id: int64, score: int64 };
            CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
            "#,
        )
        .expect("DDL");
    let tweets = engine.catalog().dataset("Tweets").expect("Tweets");
    let mut state = 7u64;
    for id in 0..ROWS {
        // splitmix64 — deterministic scores without an RNG dependency.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let score = ((z ^ (z >> 31)) % 100) as i64;
        tweets
            .insert(Value::object([("id", Value::Int(id)), ("score", Value::Int(score))]))
            .expect("insert");
    }
    engine
}

/// The oracle: expected row count and id-sum of the bench query,
/// computed once through the in-process session.
fn oracle(engine: &IngestionEngine) -> (u64, i64) {
    let rows = engine.new_session(SessionConfig::new()).query(QUERY).expect("oracle");
    let rows = rows.as_array().expect("array");
    let sum = rows.iter().map(|v| v.as_int().expect("int id")).sum();
    (rows.len() as u64, sum)
}

/// Asserts the server-side streaming contract on the exact session
/// call the workers make: peak resident rows ≤ one batch.
fn assert_streaming(engine: &IngestionEngine, expected_rows: u64) {
    let session = engine.new_session(SessionConfig::new().result_batch_size(BATCH_SIZE));
    let stmts = parse_statements(QUERY).expect("parse");
    let mut stream = session.stream_statement(&stmts[0]).expect("stream");
    assert!(stream.is_streaming(), "bench query must take the streaming path");
    let mut rows = 0u64;
    while let Some(batch) = stream.next_batch().expect("batch") {
        rows += batch.len() as u64;
    }
    assert_eq!(rows, expected_rows);
    assert!(
        stream.peak_resident() <= BATCH_SIZE,
        "server-side peak resident {} rows exceeds one batch ({BATCH_SIZE}): \
         the result was materialized",
        stream.peak_resident()
    );
    eprintln!(
        "streaming contract: {rows} rows served with peak resident {} (batch {BATCH_SIZE})",
        stream.peak_resident()
    );
}

struct TierOutcome {
    connections: usize,
    requests_per_conn: usize,
    succeeded: u64,
    shed: u64,
    wrong: u64,
    io_errors: u64,
    connect_failures: u64,
    p50_us: f64,
    p99_us: f64,
    elapsed_ms: u128,
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 * q).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// One load tier: `connections` client threads, each holding its
/// connection open for `requests_per_conn` sequential queries.
fn run_tier(
    addr: SocketAddr,
    connections: usize,
    requests_per_conn: usize,
    expected: (u64, i64),
) -> TierOutcome {
    let succeeded = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let wrong = Arc::new(AtomicU64::new(0));
    let io_errors = Arc::new(AtomicU64::new(0));
    let connect_failures = Arc::new(AtomicU64::new(0));
    let start = Instant::now();

    let mut handles = Vec::with_capacity(connections);
    for c in 0..connections {
        let (succeeded, shed, wrong, io_errors, connect_failures) = (
            succeeded.clone(),
            shed.clone(),
            wrong.clone(),
            io_errors.clone(),
            connect_failures.clone(),
        );
        let handle = thread::Builder::new()
            .stack_size(192 * 1024)
            .name(format!("bench-conn-{c}"))
            .spawn(move || -> Vec<f64> {
                // Retry the connect: with thousands of simultaneous
                // SYNs the accept backlog overflows transiently.
                let mut client = None;
                for attempt in 0..5 {
                    match Client::connect_timeout(&addr, "bench", Duration::from_secs(10)) {
                        Ok(c) => {
                            client = Some(c);
                            break;
                        }
                        Err(_) => thread::sleep(Duration::from_millis(20 << attempt)),
                    }
                }
                let Some(mut client) = client else {
                    connect_failures.fetch_add(1, Ordering::Relaxed);
                    return Vec::new();
                };
                let mut latencies = Vec::with_capacity(requests_per_conn);
                for _ in 0..requests_per_conn {
                    let t = Instant::now();
                    let mut rows = 0u64;
                    let mut sum = 0i64;
                    let res = client.query_streamed(QUERY, |batch| {
                        rows += batch.len() as u64;
                        sum += batch.iter().filter_map(Value::as_int).sum::<i64>();
                    });
                    match res {
                        Ok(_) => {
                            latencies.push(t.elapsed().as_secs_f64() * 1e6);
                            if (rows, sum) == expected {
                                succeeded.fetch_add(1, Ordering::Relaxed);
                            } else {
                                wrong.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) if e.is_shed() => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            io_errors.fetch_add(1, Ordering::Relaxed);
                            return latencies; // connection unusable
                        }
                    }
                }
                latencies
            })
            .expect("spawn bench client");
        handles.push(handle);
        // Ramp in waves so the SYN backlog keeps up.
        if c % 200 == 199 {
            thread::sleep(Duration::from_millis(10));
        }
    }

    let mut latencies: Vec<f64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("bench client panicked"));
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());

    TierOutcome {
        connections,
        requests_per_conn,
        succeeded: succeeded.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        wrong: wrong.load(Ordering::Relaxed),
        io_errors: io_errors.load(Ordering::Relaxed),
        connect_failures: connect_failures.load(Ordering::Relaxed),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        elapsed_ms: start.elapsed().as_millis(),
    }
}

fn json_tier(t: &TierOutcome) -> String {
    let total = (t.succeeded + t.shed + t.wrong + t.io_errors).max(1);
    format!(
        concat!(
            "{{\"connections\": {}, \"requests_per_conn\": {}, \"succeeded\": {}, ",
            "\"shed\": {}, \"wrong\": {}, \"io_errors\": {}, \"connect_failures\": {}, ",
            "\"shed_rate\": {:.4}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"elapsed_ms\": {}}}"
        ),
        t.connections,
        t.requests_per_conn,
        t.succeeded,
        t.shed,
        t.wrong,
        t.io_errors,
        t.connect_failures,
        t.shed as f64 / total as f64,
        t.p50_us,
        t.p99_us,
        t.elapsed_ms
    )
}

/// The soft fd limit, read without libc; connections are skipped, not
/// silently truncated, when the budget cannot hold a tier.
fn fd_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(1024)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("IDEA_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    // (connections, requests per connection)
    let tiers: &[(usize, usize)] =
        if smoke { &[(50, 4), (200, 2)] } else { &[(100, 20), (1_000, 5), (5_000, 2)] };

    let engine = setup_engine();
    let expected = oracle(&engine);
    eprintln!(
        "== serve bench ({} rows, oracle: {} rows / sum {}) ==",
        ROWS, expected.0, expected.1
    );
    assert_streaming(&engine, expected.0);

    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let config = ServerConfig {
        admission: AdmissionConfig {
            max_concurrency: cores.max(4),
            per_tenant_concurrency: cores.max(4),
            queue_capacity: 2_048,
            per_tenant_queue: 2_048,
            queue_timeout: Duration::from_secs(30),
            rate_limit: None,
        },
        result_batch_size: BATCH_SIZE,
        ..Default::default()
    };
    let server = Server::start(engine.clone(), config).expect("start server");
    let addr = server.local_addr();

    // Steady-state fds per in-process connection: 2 server-side (socket
    // + shutdown-registry clone) + 1 client-side, plus headroom for
    // transient worker clones and the process itself.
    let limit = fd_limit();
    let budget = |conns: usize| conns * 3 + 256;

    let mut outcomes: Vec<TierOutcome> = Vec::new();
    let mut skipped: Vec<usize> = Vec::new();
    for &(conns, reqs) in tiers {
        if budget(conns) > limit {
            eprintln!("tier {conns}: skipped — needs ~{} fds, limit is {limit}", budget(conns));
            skipped.push(conns);
            continue;
        }
        let t = run_tier(addr, conns, reqs, expected);
        eprintln!(
            "tier {:>5} conns × {} req: ok {:>6}  shed {:>5} ({:>5.1}%)  wrong {}  \
             p50 {:>9.1}us  p99 {:>9.1}us  ({} ms)",
            t.connections,
            t.requests_per_conn,
            t.succeeded,
            t.shed,
            100.0 * t.shed as f64 / (t.succeeded + t.shed).max(1) as f64,
            t.wrong,
            t.p50_us,
            t.p99_us,
            t.elapsed_ms
        );
        outcomes.push(t);
    }
    server.shutdown();

    let body: Vec<String> = outcomes.iter().map(|t| format!("    {}", json_tier(t))).collect();
    let json = format!(
        concat!(
            "{{\n  \"smoke\": {},\n  \"rows\": {},\n  \"cores\": {},\n  \"batch_size\": {},\n",
            "  \"fd_limit\": {},\n  \"skipped_tiers\": {:?},\n  \"tiers\": [\n{}\n  ]\n}}\n"
        ),
        smoke,
        ROWS,
        cores,
        BATCH_SIZE,
        limit,
        skipped,
        body.join(",\n")
    );
    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");
    eprintln!("wrote BENCH_serve.json");

    // Acceptance bars: zero wrong results anywhere; on a full run the
    // 1k-connection tier must complete with every request answered.
    for t in &outcomes {
        assert_eq!(t.wrong, 0, "tier {}: wrong results over the wire", t.connections);
        assert_eq!(t.connect_failures, 0, "tier {}: clients never connected", t.connections);
        assert_eq!(t.io_errors, 0, "tier {}: connections died mid-run", t.connections);
    }
    if !smoke {
        let t1k = outcomes
            .iter()
            .find(|t| t.connections >= 1_000)
            .expect("full run must include the 1k-connection tier");
        let answered = t1k.succeeded + t1k.shed;
        assert_eq!(
            answered,
            (t1k.connections * t1k.requests_per_conn) as u64,
            "1k tier: every request must be answered (result or typed shed)"
        );
    }
}

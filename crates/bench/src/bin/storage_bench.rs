//! `scripts/bench.sh` entry point: measures background LSM maintenance
//! (off-thread flush/merge) against the synchronous writer-path
//! baseline and writes `BENCH_storage.json`.
//!
//! Three runs over the same fixed workload, each with a concurrent
//! UDF-style probe thread doing point lookups against the dataset
//! being ingested (the enrichment hot path of paper §7.3):
//!
//! 1. **sync/constant** — no scheduler: flushes and merges run inline
//!    on the writer's critical path (the pre-change behaviour);
//! 2. **background/prefix** — AsterixDB's default prefix merge policy
//!    with maintenance on the shared worker pool;
//! 3. **background/tiered** — the size-tiered policy on the pool.
//!
//! Reported per run: ingest throughput, put-latency p50/p99/max, probe
//! latency p99, write amplification, flush/merge counts. The acceptance
//! bars: background p99 put latency at least 5x below the synchronous
//! baseline (merge work no longer lands on individual puts), and
//! ingest throughput under concurrent probes at least 1.3x the
//! baseline.
//!
//! A fourth section (`"disk"`) benchmarks the durable-storage path:
//! WAL on/off ingest throughput, a group-commit batch-size sweep over
//! writer counts with fsync on every commit, and recovery time vs.
//! ingested volume (manifest load + component open + WAL replay on a
//! cold reopen, asserted lossless).
//!
//! `--smoke` (or `IDEA_BENCH_SMOKE=1`) shrinks the record count so CI
//! finishes in seconds.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use idea_adm::{Datatype, TypeTag, Value};
use idea_storage::dataset::{Dataset, DatasetConfig};
use idea_storage::lsm::{LsmConfig, MergePolicyConfig};
use idea_storage::maintenance::MaintenanceScheduler;
use idea_storage::{DurabilityConfig, FsyncPolicy, TempDir};

/// Small memtable budget so seal/flush boundaries land well inside the
/// p99 window (roughly one seal per ~50 puts at this record size).
const MEMTABLE_BUDGET: usize = 8 * 1024;
/// Deep sealed queue so the background writer is not throttled waiting
/// on flushes (the synchronous baseline never queues sealed memtables —
/// it flushes inline).
const MAX_SEALED: usize = 8;

fn tweet_type() -> Datatype {
    Datatype::new("TweetType")
        .field("id", TypeTag::Int64)
        .field("text", TypeTag::String)
        .field("country", TypeTag::String)
}

fn tweet(id: i64) -> Value {
    Value::object([
        ("id", Value::Int(id)),
        ("text", Value::str(format!("tweet number {id} with a realistic payload body"))),
        ("country", Value::str(if id % 7 == 0 { "US" } else { "CA" })),
    ])
}

#[derive(Debug)]
struct LatencyStats {
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    max_us: f64,
}

fn stats(samples: &mut [f64]) -> LatencyStats {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    LatencyStats {
        p50_us: percentile(samples, 0.50),
        p99_us: percentile(samples, 0.99),
        p999_us: percentile(samples, 0.999),
        max_us: samples.last().copied().unwrap_or(0.0),
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 * q).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

struct RunResult {
    mode: &'static str,
    policy: &'static str,
    records: usize,
    ingest_ms: f64,
    drained_ms: f64,
    records_per_sec: f64,
    put: LatencyStats,
    /// p99 put latency "at merge points": for the synchronous run, the
    /// p99 over puts that performed a flush or merge inline; for
    /// background runs every put is a plain memtable insert (merges run
    /// concurrently), so this is the overall put p99.
    merge_point_p99_us: f64,
    probes: u64,
    probe_p99_us: f64,
    write_amp: f64,
    flushes: u64,
    merges: u64,
    components: usize,
}

/// Ingests `records` tweets while a probe thread does continuous point
/// lookups (the enrichment UDF's reference-data access pattern).
fn run_ingest(
    mode: &'static str,
    policy: MergePolicyConfig,
    scheduler: Option<&Arc<MaintenanceScheduler>>,
    records: usize,
) -> RunResult {
    let ds = Arc::new(Dataset::new(
        "Tweets",
        tweet_type(),
        "id",
        DatasetConfig {
            lsm: LsmConfig {
                memtable_budget_bytes: MEMTABLE_BUDGET,
                max_sealed_memtables: MAX_SEALED,
                merge_policy: policy,
                durability: DurabilityConfig::default(),
            },
            skip_validation: false,
        },
    ));
    if let Some(s) = scheduler {
        ds.attach_maintenance(Arc::clone(s));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let probe_count = Arc::new(AtomicU64::new(0));
    let probe_lat = {
        let ds = Arc::clone(&ds);
        let stop = Arc::clone(&stop);
        let probe_count = Arc::clone(&probe_count);
        let span = records as u64;
        std::thread::spawn(move || {
            let mut seed = 0xabcd_ef01u64;
            let mut lat = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let k = (seed % span) as i64;
                let t = Instant::now();
                let _ = ds.get(&Value::Int(k));
                lat.push(t.elapsed().as_secs_f64() * 1e6);
                probe_count.fetch_add(1, Ordering::Relaxed);
            }
            lat
        })
    };

    let mut put_us = Vec::with_capacity(records);
    let mut boundary_us = Vec::new();
    let t0 = Instant::now();
    for i in 0..records as i64 {
        let rec = tweet(i);
        let maint_before = ds.flush_count() + ds.merge_count();
        let t = Instant::now();
        ds.upsert(rec).unwrap();
        let lat = t.elapsed().as_secs_f64() * 1e6;
        put_us.push(lat);
        // In the synchronous run maintenance counters only move inside
        // a put — those are the merge-point puts.
        if ds.flush_count() + ds.merge_count() != maint_before {
            boundary_us.push(lat);
        }
    }
    let ingest = t0.elapsed();
    if let Some(s) = scheduler {
        s.drain();
    }
    let drained = t0.elapsed();
    stop.store(true, Ordering::Relaxed);
    let mut probe_us = probe_lat.join().unwrap();

    RunResult {
        mode,
        policy: match policy {
            MergePolicyConfig::NoMerge => "no-merge",
            MergePolicyConfig::Constant { .. } => "constant",
            MergePolicyConfig::Prefix { .. } => "prefix",
            MergePolicyConfig::Tiered { .. } => "tiered",
        },
        records,
        ingest_ms: ingest.as_secs_f64() * 1e3,
        drained_ms: drained.as_secs_f64() * 1e3,
        records_per_sec: records as f64 / ingest.as_secs_f64(),
        merge_point_p99_us: if scheduler.is_none() {
            boundary_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
            percentile(&boundary_us, 0.99)
        } else {
            let mut all = put_us.clone();
            all.sort_by(|a, b| a.partial_cmp(b).unwrap());
            percentile(&all, 0.99)
        },
        put: stats(&mut put_us),
        probes: probe_count.load(Ordering::Relaxed),
        probe_p99_us: percentile(
            {
                probe_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
                &probe_us
            },
            0.99,
        ),
        write_amp: ds.write_amp(),
        flushes: ds.flush_count(),
        merges: ds.merge_count(),
        components: ds.component_count(),
    }
}

/// One durable-mode ingest run: `writers` threads upsert into a
/// WAL-logged, on-disk dataset rooted in a fresh tmpdir.
struct DiskRunResult {
    writers: usize,
    wal: bool,
    fsync: &'static str,
    records: usize,
    ingest_ms: f64,
    records_per_sec: f64,
    /// Achieved group-commit batch size (commits per leader flush).
    group_commit_batch: f64,
    wal_bytes: u64,
    flushes: u64,
}

fn disk_config(wal: bool, fsync: FsyncPolicy) -> DatasetConfig {
    DatasetConfig {
        lsm: LsmConfig {
            // Larger than the in-memory runs: disk runs measure the
            // logging path, not seal churn.
            memtable_budget_bytes: 256 * 1024,
            max_sealed_memtables: 4,
            merge_policy: MergePolicyConfig::Prefix {
                max_mergable_entries: 1 << 20,
                max_tolerance_components: 6,
            },
            durability: DurabilityConfig { wal, fsync, ..DurabilityConfig::default() },
        },
        skip_validation: false,
    }
}

fn run_disk_ingest(
    wal: bool,
    fsync: FsyncPolicy,
    fsync_name: &'static str,
    records: usize,
    writers: usize,
    scheduler: &Arc<MaintenanceScheduler>,
) -> DiskRunResult {
    let tmp = TempDir::new("bench-disk");
    let ds = Arc::new(
        Dataset::open_durable("Tweets", tweet_type(), "id", disk_config(wal, fsync), tmp.path())
            .expect("open durable bench dataset"),
    );
    ds.attach_maintenance(Arc::clone(scheduler));
    let per = records / writers;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for w in 0..writers {
            let ds = Arc::clone(&ds);
            s.spawn(move || {
                for i in 0..per {
                    ds.upsert(tweet((w * per + i) as i64)).unwrap();
                }
            });
        }
    });
    let ingest = t0.elapsed();
    scheduler.drain();
    let wal_stats = ds.wal_stats();
    DiskRunResult {
        writers,
        wal,
        fsync: fsync_name,
        records: per * writers,
        ingest_ms: ingest.as_secs_f64() * 1e3,
        records_per_sec: (per * writers) as f64 / ingest.as_secs_f64(),
        group_commit_batch: wal_stats
            .map(|w| w.commits as f64 / w.flush_rounds.max(1) as f64)
            .unwrap_or(0.0),
        wal_bytes: wal_stats.map(|w| w.bytes_appended).unwrap_or(0),
        flushes: ds.flush_count(),
    }
}

struct RecoveryResult {
    records: usize,
    recovery_ms: u64,
    replayed_records: u64,
    components_loaded: u64,
}

/// Ingests `records`, drops the engine without a clean flush, reopens,
/// and reports how long recovery (manifest + component opens + WAL
/// replay) took. fsync stays off: the data never leaves the OS page
/// cache, which is exactly the recovery-path cost we want to isolate.
fn run_recovery(records: usize) -> RecoveryResult {
    let tmp = TempDir::new("bench-recover");
    let cfg = disk_config(true, FsyncPolicy::Never);
    {
        let ds = Dataset::open_durable("Tweets", tweet_type(), "id", cfg.clone(), tmp.path())
            .expect("open durable bench dataset");
        for i in 0..records as i64 {
            ds.upsert(tweet(i)).unwrap();
        }
        // Dropped hot: the memtable tail exists only in the WAL.
    }
    let ds = Dataset::open_durable("Tweets", tweet_type(), "id", cfg, tmp.path())
        .expect("reopen durable bench dataset");
    assert_eq!(ds.len(), records, "recovery lost records");
    let stats = ds.recovery_stats().expect("durable dataset has recovery stats");
    RecoveryResult {
        records,
        recovery_ms: stats.millis,
        replayed_records: stats.replayed_records,
        components_loaded: stats.components_loaded,
    }
}

fn json_disk_run(r: &DiskRunResult) -> String {
    format!(
        concat!(
            "{{\"writers\": {}, \"wal\": {}, \"fsync\": \"{}\", \"records\": {}, ",
            "\"ingest_ms\": {:.2}, \"records_per_sec\": {:.1}, ",
            "\"group_commit_batch\": {:.2}, \"wal_bytes\": {}, \"flushes\": {}}}"
        ),
        r.writers,
        r.wal,
        r.fsync,
        r.records,
        r.ingest_ms,
        r.records_per_sec,
        r.group_commit_batch,
        r.wal_bytes,
        r.flushes,
    )
}

fn json_recovery(r: &RecoveryResult) -> String {
    format!(
        concat!(
            "{{\"records\": {}, \"recovery_ms\": {}, ",
            "\"replayed_records\": {}, \"components_loaded\": {}}}"
        ),
        r.records, r.recovery_ms, r.replayed_records, r.components_loaded,
    )
}

fn json_run(r: &RunResult) -> String {
    format!(
        concat!(
            "{{\"mode\": \"{}\", \"policy\": \"{}\", \"records\": {}, ",
            "\"ingest_ms\": {:.2}, \"drained_ms\": {:.2}, \"records_per_sec\": {:.1}, ",
            "\"put_p50_us\": {:.2}, \"put_p99_us\": {:.2}, \"put_p999_us\": {:.2}, ",
            "\"merge_point_p99_us\": {:.2}, ",
            "\"put_max_us\": {:.2}, \"probes\": {}, \"probe_p99_us\": {:.2}, ",
            "\"write_amp\": {:.3}, \"flushes\": {}, \"merges\": {}, \"components\": {}}}"
        ),
        r.mode,
        r.policy,
        r.records,
        r.ingest_ms,
        r.drained_ms,
        r.records_per_sec,
        r.put.p50_us,
        r.put.p99_us,
        r.put.p999_us,
        r.merge_point_p99_us,
        r.put.max_us,
        r.probes,
        r.probe_p99_us,
        r.write_amp,
        r.flushes,
        r.merges,
        r.components,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("IDEA_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let records = if smoke { 8_000 } else { 60_000 };

    eprintln!("== storage maintenance ({records} records, concurrent probes) ==");
    let baseline =
        run_ingest("sync", MergePolicyConfig::Constant { max_components: 4 }, None, records);

    let sched = MaintenanceScheduler::new(4);
    let prefix = run_ingest(
        "background",
        MergePolicyConfig::Prefix {
            max_mergable_entries: records / 2,
            max_tolerance_components: 4,
        },
        Some(&sched),
        records,
    );
    let tiered = run_ingest(
        "background",
        MergePolicyConfig::Tiered { size_ratio: 1.2, min_merge: 3, max_merge: 10 },
        Some(&sched),
        records,
    );

    // Disk mode: WAL on/off throughput, then a group-commit sweep over
    // writer counts with the fsync-per-commit path engaged.
    let disk_records = if smoke { 4_000 } else { 30_000 };
    eprintln!("== durable storage ({disk_records} records on disk) ==");
    let wal_on = run_disk_ingest(true, FsyncPolicy::Never, "never", disk_records, 1, &sched);
    let wal_off = run_disk_ingest(false, FsyncPolicy::Never, "never", disk_records, 1, &sched);
    let sweep: Vec<DiskRunResult> = [1usize, 4, 8]
        .iter()
        .map(|&w| {
            run_disk_ingest(
                true,
                FsyncPolicy::Always,
                "always",
                if smoke { 2_000 } else { 8_000 },
                w,
                &sched,
            )
        })
        .collect();
    sched.shutdown();
    for r in [&wal_on, &wal_off].into_iter().chain(sweep.iter()) {
        eprintln!(
            "disk wal={:<5} fsync={:<6} writers={} {:>9.0} rec/s  group-commit batch {:>5.2}  ({} flushes)",
            r.wal, r.fsync, r.writers, r.records_per_sec, r.group_commit_batch, r.flushes
        );
    }

    // Recovery time as data volume grows.
    let recovery: Vec<RecoveryResult> =
        if smoke { vec![2_000, 4_000] } else { vec![10_000, 20_000, 40_000] }
            .into_iter()
            .map(run_recovery)
            .collect();
    for r in &recovery {
        eprintln!(
            "recovery {:>6} records: {:>5} ms  ({} replayed from WAL, {} components)",
            r.records, r.recovery_ms, r.replayed_records, r.components_loaded
        );
    }

    for r in [&baseline, &prefix, &tiered] {
        eprintln!(
            "{:<10} {:<9} {:>9.0} rec/s  put p99 {:>8.1}us max {:>9.1}us  wa {:.2}  ({} flushes, {} merges)",
            r.mode, r.policy, r.records_per_sec, r.put.p99_us, r.put.max_us, r.write_amp,
            r.flushes, r.merges
        );
    }
    let p99_reduction = baseline.merge_point_p99_us / prefix.merge_point_p99_us.max(0.001);
    let speedup = prefix.records_per_sec / baseline.records_per_sec;
    eprintln!("merge-point p99 put reduction (sync/background-prefix): {p99_reduction:.1}x");
    eprintln!("ingest speedup under probes (background-prefix/sync): {speedup:.2}x");

    let out = std::env::args().nth(1).filter(|a| a != "--smoke");
    let path = out.unwrap_or_else(|| "BENCH_storage.json".to_string());
    let disk_json = format!(
        concat!(
            "{{\n",
            "    \"wal_on\": {},\n",
            "    \"wal_off\": {},\n",
            "    \"group_commit_sweep\": [\n      {}\n    ],\n",
            "    \"recovery\": [\n      {}\n    ]\n",
            "  }}"
        ),
        json_disk_run(&wal_on),
        json_disk_run(&wal_off),
        sweep.iter().map(json_disk_run).collect::<Vec<_>>().join(",\n      "),
        recovery.iter().map(json_recovery).collect::<Vec<_>>().join(",\n      "),
    );
    let json = format!(
        concat!(
            "{{\n",
            "  \"smoke\": {},\n",
            "  \"memtable_budget_bytes\": {},\n",
            "  \"runs\": [\n    {},\n    {},\n    {}\n  ],\n",
            "  \"disk\": {},\n",
            "  \"merge_point_p99_put_reduction\": {:.2},\n",
            "  \"ingest_speedup\": {:.2}\n",
            "}}\n"
        ),
        smoke,
        MEMTABLE_BUDGET,
        json_run(&baseline),
        json_run(&prefix),
        json_run(&tiered),
        disk_json,
        p99_reduction,
        speedup,
    );
    std::fs::write(&path, json).expect("write BENCH_storage.json");
    eprintln!("wrote {path}");

    // Acceptance bars: moving maintenance off the writer's critical
    // path must cut tail put latency at merge points by at least 5x and
    // lift ingest throughput under concurrent probes by at least 1.3x.
    assert!(
        p99_reduction >= 5.0,
        "background merge-point p99 reduction {p99_reduction:.2}x is below the 5x acceptance bar"
    );
    assert!(
        speedup >= 1.3,
        "background ingest speedup {speedup:.2}x is below the 1.3x acceptance bar"
    );
}

//! Plain-text table printing for the figure harnesses.

/// A simple aligned table: header row plus data rows.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], out: &mut String| {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
            // Trim trailing spaces.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }

    /// Prints to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Formats a records/second value compactly.
pub fn fmt_rate(r: f64) -> String {
    if r >= 10_000.0 {
        format!("{:.1}k", r / 1000.0)
    } else {
        format!("{r:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_render() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].starts_with("longer"));
        assert!(lines[0].contains("value"));
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(123.4), "123");
        assert_eq!(fmt_rate(123_456.0), "123.5k");
    }
}

//! Calibration: measure real-engine per-operation costs on this host
//! and build the [`CostModel`] the cluster model runs with.

use std::sync::Arc;
use std::time::Instant;

use idea_clustersim::{CostModel, EnrichKind};
use idea_query::{apply_function, Catalog, ExecContext};
use idea_workload::scenarios::{setup_scenario, setup_tweet_datasets};
use idea_workload::{ScenarioKey, TweetGenerator, WorkloadScale};

/// Measured costs for one enrichment scenario.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioCosts {
    /// Seconds to build the per-batch state (hash tables /
    /// materializations) over the *whole* reference data.
    pub build_total: f64,
    /// Steady-state seconds per enriched record (state already built).
    pub per_record: f64,
    /// Total reference rows the scenario loads.
    pub ref_rows: u64,
}

impl ScenarioCosts {
    /// The simulator's enrichment kind for this scenario, with measured
    /// constants.
    pub fn enrich_kind(&self, key: ScenarioKey) -> EnrichKind {
        match key {
            // Equality/aggregate joins and the compiled multi-join plans:
            // records are repartitioned, each node enriches its share
            // against per-batch-built state.
            ScenarioKey::SafetyCheck
            | ScenarioKey::SafetyRating
            | ScenarioKey::ReligiousPopulation
            | ScenarioKey::LargestReligions
            | ScenarioKey::SuspiciousNames
            | ScenarioKey::TweetContext
            | ScenarioKey::WorrisomeTweets => EnrichKind::HashJoin { per_probe: self.per_record },
            // Similarity join and the hinted no-index spatial join scan
            // reference partitions per record (records broadcast).
            ScenarioKey::FuzzySuspects | ScenarioKey::NaiveNearbyMonuments => {
                EnrichKind::ScanJoin { per_row: self.per_record / self.ref_rows.max(1) as f64 }
            }
            // The pure index-nested-loop join broadcasts incoming tweets
            // to every node's local R-tree (§7.4.2).
            ScenarioKey::NearbyMonuments => EnrichKind::IndexJoin { per_probe: self.per_record },
        }
    }

    /// Per-reference-row build cost.
    pub fn build_per_row(&self) -> f64 {
        self.build_total / self.ref_rows.max(1) as f64
    }
}

/// Measures a scenario's build and per-record costs on a single-node
/// catalog.
pub fn calibrate_scenario(key: ScenarioKey, scale: &WorkloadScale, sample: u64) -> ScenarioCosts {
    let catalog = Catalog::new(1);
    setup_tweet_datasets(&catalog).expect("datasets");
    let sc = setup_scenario(&catalog, key, scale, 7).expect("scenario");
    let ref_rows = ref_rows_of(&catalog, key);
    let gen = TweetGenerator::new(13);
    let tweets: Vec<_> = (0..sample.max(2))
        .map(|i| idea_adm::json::parse(gen.generate(i).as_bytes()).unwrap())
        .collect();

    let mut ctx = ExecContext::new(catalog.clone());
    // First record pays the state build.
    let t0 = Instant::now();
    apply_function(&mut ctx, &sc.function, &[tweets[0].clone()]).unwrap();
    let first = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    for t in &tweets[1..] {
        apply_function(&mut ctx, &sc.function, std::slice::from_ref(t)).unwrap();
    }
    let per_record = t1.elapsed().as_secs_f64() / (tweets.len() - 1) as f64;

    ScenarioCosts { build_total: (first - per_record).max(0.0), per_record, ref_rows }
}

fn ref_rows_of(catalog: &Arc<Catalog>, key: ScenarioKey) -> u64 {
    // Count the primary reference dataset (the dominant build input).
    catalog.dataset(key.primary_reference()).map(|d| d.len() as u64).unwrap_or(0)
}

/// Measures the pipeline's per-record costs (parse, store, adapter) and
/// control-plane costs (task dispatch), returning the base cost model
/// (enrichment costs come from [`calibrate_scenario`]).
pub fn calibrate_cost_model() -> CostModel {
    let gen = TweetGenerator::new(17);
    let raw: Vec<String> = gen.batch(0, 2_000);

    // Parse cost.
    let t = Instant::now();
    let parsed: Vec<idea_adm::Value> =
        raw.iter().map(|r| idea_adm::json::parse(r.as_bytes()).unwrap()).collect();
    let parse_per_record = t.elapsed().as_secs_f64() / raw.len() as f64;

    // Store cost (fresh single-partition dataset, LSM upserts).
    let catalog = Catalog::new(1);
    idea_query::Session::new(catalog.clone())
        .run_script("CREATE TYPE T AS OPEN { id: int64 }; CREATE DATASET D(T) PRIMARY KEY id;")
        .unwrap();
    let ds = catalog.dataset("D").unwrap();
    let t = Instant::now();
    for rec in &parsed {
        ds.upsert(rec.clone()).unwrap();
    }
    let store_per_record = t.elapsed().as_secs_f64() / parsed.len() as f64;

    // Adapter/framing cost: dominated by a clone + queue push; measure a
    // comparable copy.
    let t = Instant::now();
    let mut sink = Vec::with_capacity(raw.len());
    for r in &raw {
        sink.push(idea_adm::Value::Str(r.clone()));
    }
    std::hint::black_box(&sink);
    let adapter_per_record = t.elapsed().as_secs_f64() / raw.len() as f64;

    // Control-plane: invoke an empty predeployed job repeatedly on 1 and
    // 4 nodes; the per-node slope is the dispatch cost.
    let per_job = |nodes: usize| -> f64 {
        let cluster = idea_hyracks::Cluster::with_nodes(nodes);
        let spec = empty_job();
        let id = cluster.deploy_job(spec);
        let reps = 30;
        let t = Instant::now();
        for _ in 0..reps {
            cluster.invoke_deployed(id, idea_adm::Value::Missing).unwrap().join().unwrap();
        }
        t.elapsed().as_secs_f64() / reps as f64
    };
    let j1 = per_job(1);
    let j4 = per_job(4);
    // 3 stages per job: slope per task = (j4 - j1) / (3 * (4 - 1)).
    let task_dispatch = ((j4 - j1) / 9.0).max(1e-6);
    let job_fixed = (j1 - 3.0 * task_dispatch).max(1e-5);

    CostModel {
        adapter_per_record: adapter_per_record.max(1e-8),
        parse_per_record,
        build_per_row: 0.5e-6, // replaced per scenario by ScenarioCosts
        build_fixed: 2.0e-4,
        store_per_record,
        task_dispatch,
        task_start: task_dispatch, // same order; message delivery
        job_fixed,
        // The paper's testbed hardware: ~450-byte records over Gigabit
        // Ethernet. These stay as modeled constants — our in-process
        // "network" is memcpy-fast, so measuring it would erase the
        // intake bottleneck the paper's Figure 24 exposes (see
        // DESIGN.md's substitution table).
        record_bytes: 450.0,
        network_bytes_per_sec: 125.0e6,
    }
}

fn empty_job() -> idea_hyracks::JobSpec {
    use idea_hyracks::{ConnectorSpec, Frame, FrameSink, JobSpec, Operator, TaskContext};
    struct Noop;
    impl Operator for Noop {
        fn next_frame(
            &mut self,
            _f: Frame,
            _o: &mut dyn FrameSink,
            _c: &mut TaskContext,
        ) -> idea_hyracks::Result<()> {
            Ok(())
        }
        fn run_source(
            &mut self,
            _o: &mut dyn FrameSink,
            _c: &mut TaskContext,
        ) -> idea_hyracks::Result<()> {
            Ok(())
        }
    }
    JobSpec::new("calibration")
        .stage("a", ConnectorSpec::OneToOne, Arc::new(|_: &TaskContext| Box::new(Noop) as _))
        .stage("b", ConnectorSpec::OneToOne, Arc::new(|_: &TaskContext| Box::new(Noop) as _))
        .stage("c", ConnectorSpec::OneToOne, Arc::new(|_: &TaskContext| Box::new(Noop) as _))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_sane_costs() {
        let cm = calibrate_cost_model();
        assert!(cm.parse_per_record > 0.0 && cm.parse_per_record < 1e-3);
        assert!(cm.store_per_record > 0.0 && cm.store_per_record < 1e-2);
        assert!(cm.task_dispatch > 0.0);
    }

    #[test]
    fn scenario_calibration_runs() {
        let costs = calibrate_scenario(ScenarioKey::SafetyRating, &WorkloadScale::tiny(), 50);
        assert!(costs.per_record > 0.0);
        assert!(costs.ref_rows > 0);
        assert!(matches!(
            costs.enrich_kind(ScenarioKey::SafetyRating),
            EnrichKind::HashJoin { .. }
        ));
    }
}

//! # idea-bench — the experiment harness
//!
//! One bench target per evaluation figure (see DESIGN.md's experiment
//! index). Figures on a fixed 6-node cluster (25, 26, 27, 29) run the
//! **real engine**; scale-out figures (24, 28, 30, 31) run the
//! **cluster model** with constants calibrated from the real engine on
//! this host (see `calibrate`).
//!
//! Knobs (environment variables, all optional):
//!
//! * `IDEA_TWEETS` — tweets per enrichment run (default 2000);
//! * `IDEA_REF_SCALE` — reference-data scale factor vs the paper
//!   (default 0.01, i.e. SafetyRatings = 5000 records);
//! * `IDEA_SIM_TWEETS` — virtual tweets for simulated figures
//!   (default 100000).

pub mod calibrate;
pub mod harness;
pub mod table;

pub use calibrate::{calibrate_cost_model, calibrate_scenario, ScenarioCosts};
pub use harness::{run_enrichment, EnrichmentRun, UdfFlavor};
pub use table::Table;

/// Tweets per real-engine run.
pub fn env_tweets() -> u64 {
    std::env::var("IDEA_TWEETS").ok().and_then(|v| v.parse().ok()).unwrap_or(10_000)
}

/// Reference-data scale factor vs the paper's sizes.
pub fn env_ref_scale() -> f64 {
    std::env::var("IDEA_REF_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01)
}

/// Virtual tweets for simulated figures.
pub fn env_sim_tweets() -> u64 {
    std::env::var("IDEA_SIM_TWEETS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

/// The paper's batch sizes: 1X, 4X, 16X (records each node's collector
/// pulls per computing job).
pub const BATCH_1X: u64 = 420;
pub const BATCH_4X: u64 = 1_680;
pub const BATCH_16X: u64 = 6_720;

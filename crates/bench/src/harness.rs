//! Real-engine experiment runner: stand up a cluster+catalog, install a
//! scenario, feed tweets, optionally run a concurrent reference-update
//! feed, and report throughput / refresh periods.

use std::sync::Arc;

use idea_core::{
    AdapterFactory, ComputingModel, FeedSpec, IngestionEngine, IngestionReport, PipelineMode,
    RateLimitedAdapter, VecAdapter,
};
use idea_workload::scenarios::{setup_scenario, setup_tweet_datasets};
use idea_workload::{updates, ScenarioKey, TweetGenerator, WorkloadScale};

/// Which UDF implementation the feed applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdfFlavor {
    /// The SQL++ declarative UDF.
    Sqlpp,
    /// The native ("Java") equivalent.
    Native,
    /// No UDF: plain ingestion.
    None,
}

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct EnrichmentRun {
    pub nodes: usize,
    pub scenario: Option<ScenarioKey>,
    pub flavor: UdfFlavor,
    /// Static (old framework) vs decoupled (new framework).
    pub mode: PipelineMode,
    pub model: ComputingModel,
    /// Records per node per computing job (the paper's 1X = 420).
    pub batch_size: u64,
    pub tweets: u64,
    pub ref_scale: WorkloadScale,
    /// Run all intake on all nodes ("balanced").
    pub balanced: bool,
    /// Concurrent reference updates per second (§7.3); 0 = none.
    pub update_rate: f64,
    pub predeploy: bool,
    pub seed: u64,
}

impl EnrichmentRun {
    /// Defaults matching the §7.2 setup: 6 nodes, decoupled, per-batch,
    /// balanced intake.
    pub fn new(scenario: Option<ScenarioKey>, tweets: u64, ref_scale: WorkloadScale) -> Self {
        EnrichmentRun {
            nodes: 6,
            scenario,
            flavor: if scenario.is_some() { UdfFlavor::Sqlpp } else { UdfFlavor::None },
            mode: PipelineMode::Decoupled,
            model: ComputingModel::PerBatch,
            batch_size: crate::BATCH_1X,
            tweets,
            ref_scale,
            balanced: true,
            update_rate: 0.0,
            predeploy: true,
            seed: 42,
        }
    }

    pub fn flavor(mut self, f: UdfFlavor) -> Self {
        self.flavor = f;
        self
    }

    pub fn mode(mut self, m: PipelineMode) -> Self {
        self.mode = m;
        self
    }

    pub fn batch_size(mut self, b: u64) -> Self {
        self.batch_size = b;
        self
    }

    pub fn update_rate(mut self, r: f64) -> Self {
        self.update_rate = r;
        self
    }

    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }
}

/// Runs one configuration on the real engine and returns its report.
pub fn run_enrichment(run: &EnrichmentRun) -> IngestionReport {
    let engine = IngestionEngine::with_nodes(run.nodes);
    setup_tweet_datasets(engine.catalog()).expect("tweet datasets");
    let function = match run.scenario {
        None => None,
        Some(key) => {
            let sc = setup_scenario(engine.catalog(), key, &run.ref_scale, run.seed)
                .expect("scenario setup");
            match run.flavor {
                UdfFlavor::Sqlpp => Some(sc.function),
                UdfFlavor::Native => Some(
                    sc.native_function.unwrap_or_else(|| panic!("{key:?} has no native variant")),
                ),
                UdfFlavor::None => None,
            }
        }
    };

    // Pre-generate the tweet stream: generation cost must not pollute
    // ingestion throughput.
    let gen = TweetGenerator::new(run.seed)
        .with_suspect_rate(100, run.ref_scale.suspects_names.max(run.ref_scale.sensitive_names));
    let records: Vec<String> = gen.batch(0, run.tweets);

    let mut spec = FeedSpec::new("bench", "Tweets", VecAdapter::factory(records))
        .with_batch_size(run.batch_size as usize)
        .with_model(run.model)
        .with_mode(run.mode)
        .with_predeploy(run.predeploy);
    if run.balanced {
        spec = spec.balanced(run.nodes);
    }
    if let Some(f) = function {
        spec = spec.with_function(f);
    }

    // Optional concurrent reference-update feed (§7.3), rate-limited to
    // `update_rate` records/second.
    let update_handle = match (run.update_rate > 0.0, run.scenario) {
        (true, Some(key)) => {
            let target = key.primary_reference().to_owned();
            let scale = run.ref_scale;
            let seed = run.seed ^ 0xDEAD;
            let rate = run.update_rate;
            let factory: AdapterFactory = Arc::new(move |_p, _n| {
                // Lazily generated, effectively unbounded update stream.
                let gen = idea_core::GeneratorAdapter::new(u64::MAX, move |i| {
                    updates::update_record(key, &scale, seed, i)
                });
                Ok(Box::new(RateLimitedAdapter::new(Box::new(gen), rate))
                    as Box<dyn idea_core::Adapter>)
            });
            let upd_spec = FeedSpec::new("bench-updates", &target, factory)
                .with_batch_size(64)
                .with_intake_nodes(vec![0]);
            Some(engine.start_feed(upd_spec).expect("update feed"))
        }
        _ => None,
    };

    let handle = engine.start_feed(spec).expect("bench feed");
    let report = handle.wait().expect("bench feed run");
    if let Some(h) = update_handle {
        let _ = h.stop_and_wait();
    }
    assert_eq!(report.records_stored, run.tweets, "all tweets must be stored");
    report
}

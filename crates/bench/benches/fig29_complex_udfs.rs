//! Figure 29 — the complex-UDF comparison: {Nearby Monuments,
//! Suspicious Names, Tweet Context, Worrisome Tweets} × batch
//! 1X/4X/16X, 100K tweets, 6 nodes. Real engine.

use idea_bench::{
    run_enrichment, table::fmt_rate, EnrichmentRun, Table, BATCH_16X, BATCH_1X, BATCH_4X,
};
use idea_workload::{ScenarioKey, WorkloadScale};

fn main() {
    let tweets = (idea_bench::env_tweets() / 2).max(200);
    let scale = WorkloadScale::scaled(idea_bench::env_ref_scale());

    let mut table = Table::new(["use case", "Dyn 1X", "Dyn 4X", "Dyn 16X"]);
    for key in ScenarioKey::FIGURE29 {
        let base = EnrichmentRun::new(Some(key), tweets, scale);
        let run = |batch| fmt_rate(run_enrichment(&base.clone().batch_size(batch)).throughput);
        table.row([key.label().to_owned(), run(BATCH_1X), run(BATCH_4X), run(BATCH_16X)]);
    }
    table.print(&format!(
        "Figure 29: complex-UDF throughput (records/s), {tweets} tweets, 6 nodes, real engine"
    ));
    println!("(paper shape: Tweet Context benefits most from batching — its");
    println!(" reference-to-reference joins amortize; the others join sequentially)");
}

//! Figure 25 — 1M-tweet enrichment throughput on 6 nodes (log scale in
//! the paper): the five §7.2 use cases × {Static Java, Dynamic Java
//! 1X/4X/16X, Dynamic SQL++ 1X/4X/16X}. Real engine.

use idea_bench::{
    run_enrichment, table::fmt_rate, EnrichmentRun, Table, UdfFlavor, BATCH_16X, BATCH_1X, BATCH_4X,
};
use idea_core::PipelineMode;
use idea_workload::{ScenarioKey, WorkloadScale};

fn main() {
    let tweets = idea_bench::env_tweets();
    let scale = WorkloadScale::scaled(idea_bench::env_ref_scale());
    println!(
        "Figure 25 config: {tweets} tweets, ref scale {} (SafetyRatings = {})",
        idea_bench::env_ref_scale(),
        scale.safety_ratings
    );

    let mut table = Table::new([
        "use case",
        "Static Java",
        "Dyn Java 1X",
        "Dyn Java 4X",
        "Dyn Java 16X",
        "Dyn SQL++ 1X",
        "Dyn SQL++ 4X",
        "Dyn SQL++ 16X",
    ]);

    for key in ScenarioKey::FIGURE25 {
        // The heavier joins get fewer tweets so the sweep stays tractable.
        let n_tweets = match key {
            ScenarioKey::FuzzySuspects | ScenarioKey::NearbyMonuments => tweets / 2,
            _ => tweets,
        }
        .max(200);
        let base = EnrichmentRun::new(Some(key), n_tweets, scale);
        let run = |flavor: UdfFlavor, mode: PipelineMode, batch: u64| {
            let r = run_enrichment(&base.clone().flavor(flavor).mode(mode).batch_size(batch));
            fmt_rate(r.throughput)
        };
        table.row([
            key.label().to_owned(),
            run(UdfFlavor::Native, PipelineMode::Static, BATCH_1X),
            run(UdfFlavor::Native, PipelineMode::Decoupled, BATCH_1X),
            run(UdfFlavor::Native, PipelineMode::Decoupled, BATCH_4X),
            run(UdfFlavor::Native, PipelineMode::Decoupled, BATCH_16X),
            run(UdfFlavor::Sqlpp, PipelineMode::Decoupled, BATCH_1X),
            run(UdfFlavor::Sqlpp, PipelineMode::Decoupled, BATCH_4X),
            run(UdfFlavor::Sqlpp, PipelineMode::Decoupled, BATCH_16X),
        ]);
    }

    table.print("Figure 25: enrichment throughput (records/s), 6 nodes, real engine");
}

//! Figure 26 — refresh periods (seconds per computing job) of the
//! Dynamic SQL++ configurations across batch sizes. Real engine.

use idea_bench::{run_enrichment, EnrichmentRun, Table, BATCH_16X, BATCH_1X, BATCH_4X};
use idea_workload::{ScenarioKey, WorkloadScale};

fn main() {
    let tweets = idea_bench::env_tweets();
    let scale = WorkloadScale::scaled(idea_bench::env_ref_scale());

    let mut table =
        Table::new(["use case", "SQL++ 1X (s)", "SQL++ 4X (s)", "SQL++ 16X (s)", "jobs @16X"]);
    for key in ScenarioKey::FIGURE25 {
        let n_tweets = match key {
            ScenarioKey::FuzzySuspects | ScenarioKey::NearbyMonuments => tweets / 2,
            _ => tweets,
        }
        .max(200);
        let base = EnrichmentRun::new(Some(key), n_tweets, scale);
        let refresh = |batch: u64| run_enrichment(&base.clone().batch_size(batch));
        let r1 = refresh(BATCH_1X);
        let r4 = refresh(BATCH_4X);
        let r16 = refresh(BATCH_16X);
        table.row([
            key.label().to_owned(),
            format!("{:.4}", r1.avg_refresh_period.as_secs_f64()),
            format!("{:.4}", r4.avg_refresh_period.as_secs_f64()),
            format!("{:.4}", r16.avg_refresh_period.as_secs_f64()),
            r16.computing_jobs.to_string(),
        ]);
    }
    table.print("Figure 26: refresh period per batch size, 6 nodes, real engine");
    println!("(paper shape: refresh periods grow with batch size; Fuzzy Suspects and");
    println!(" Nearby Monuments dominate because per-record work is high)");
}

//! Figure 27 — enrichment throughput vs reference-data update rate
//! (records/second) for the five §7.2 use cases. Real engine: a second
//! data feed upserts into the scenario's primary reference dataset
//! while tweets are enriched, activating the LSM in-memory component
//! exactly as §7.3 describes.

use idea_bench::{run_enrichment, table::fmt_rate, EnrichmentRun, Table, BATCH_16X};
use idea_workload::{ScenarioKey, WorkloadScale};

fn main() {
    let tweets = idea_bench::env_tweets();
    let scale = WorkloadScale::scaled(idea_bench::env_ref_scale());
    let rates: [f64; 7] = [0.0, 1.0, 10.0, 50.0, 100.0, 200.0, 400.0];

    let mut table = Table::new(
        ["use case"]
            .into_iter()
            .map(String::from)
            .chain(rates.iter().map(|r| format!("{r}/s"))),
    );
    for key in ScenarioKey::FIGURE25 {
        let n_tweets = match key {
            ScenarioKey::FuzzySuspects | ScenarioKey::NearbyMonuments => tweets / 2,
            _ => tweets,
        }
        .max(200);
        let mut row = vec![key.label().to_owned()];
        for &rate in &rates {
            let r = run_enrichment(
                &EnrichmentRun::new(Some(key), n_tweets, scale)
                    .batch_size(BATCH_16X)
                    .update_rate(rate),
            );
            row.push(fmt_rate(r.throughput));
        }
        table.row(row);
    }
    table.print("Figure 27: throughput vs reference update rate, 6 nodes, real engine");
    println!("(paper shape: a drop from none -> 1/s as the LSM memtable activates,");
    println!(" then gradual decline; index-probing UDFs suffer most at high rates)");
}

//! Ablations beyond the paper's own figures: what each design choice of
//! §5 buys, measured on the real engine.
//!
//! 1. **Predeployed jobs** (§5.1) vs recompiling the computing job per
//!    batch.
//! 2. **Computing models** (§4.3): per-record (Model 1) vs per-batch
//!    (Model 2) vs stream (Model 3) throughput on the same workload.
//! 3. **Partition-holder queue depth** (§5.3): back-pressure vs
//!    buffering.
//! 4. **Fault-tolerance overhead**: a supervised, checkpointed feed
//!    with zero injected faults vs an unsupervised one — the price of
//!    the safety net when nothing goes wrong.

use idea_bench::{run_enrichment, table::fmt_rate, EnrichmentRun, Table, BATCH_1X};
use idea_core::{
    ComputingModel, ErrorPolicy, Fallback, FeedSpec, IngestionEngine, RetryPolicy, SupervisionSpec,
    VecAdapter,
};
use idea_workload::scenarios::{setup_scenario, setup_tweet_datasets};
use idea_workload::{ScenarioKey, TweetGenerator, WorkloadScale};

fn main() {
    let tweets = idea_bench::env_tweets();
    let scale = WorkloadScale::scaled(idea_bench::env_ref_scale());

    // 1. Predeploy vs per-batch recompilation.
    let mut t1 = Table::new(["configuration", "throughput (rec/s)", "avg refresh (ms)"]);
    for (label, predeploy) in [("predeployed computing job", true), ("recompiled per batch", false)]
    {
        let mut run =
            EnrichmentRun::new(Some(ScenarioKey::SafetyRating), tweets, scale).batch_size(BATCH_1X);
        run.predeploy = predeploy;
        let r = run_enrichment(&run);
        t1.row([
            label.to_owned(),
            fmt_rate(r.throughput),
            format!("{:.2}", r.avg_refresh_period.as_secs_f64() * 1e3),
        ]);
    }
    t1.print("Ablation 1: parameterized predeployed jobs (§5.1)");

    // 2. Computing models on the safety-check workload.
    let mut t2 = Table::new(["computing model", "throughput (rec/s)", "jobs"]);
    for (label, model, n) in [
        ("Model 1: per record", ComputingModel::PerRecord, tweets / 10),
        ("Model 2: per batch (the framework's)", ComputingModel::PerBatch, tweets),
        ("Model 3: stream (stale state)", ComputingModel::Stream, tweets),
    ] {
        let mut run = EnrichmentRun::new(Some(ScenarioKey::SafetyCheck), n.max(200), scale)
            .batch_size(BATCH_1X);
        run.model = model;
        let r = run_enrichment(&run);
        t2.row([label.to_owned(), fmt_rate(r.throughput), r.computing_jobs.to_string()]);
    }
    t2.print("Ablation 2: computing models (§4.3; Model 1 runs 10% of the tweets)");

    // 3. Partition-holder capacity.
    let mut t3 = Table::new(["holder capacity (frames)", "throughput (rec/s)"]);
    for cap in [1usize, 4, 16, 64] {
        let engine = IngestionEngine::with_nodes(6);
        setup_tweet_datasets(engine.catalog()).unwrap();
        let sc = setup_scenario(engine.catalog(), ScenarioKey::SafetyRating, &scale, 7).unwrap();
        let records = TweetGenerator::new(42).batch(0, tweets);
        let mut spec = FeedSpec::new("holders", "Tweets", VecAdapter::factory(records))
            .with_function(&sc.function)
            .with_batch_size(BATCH_1X as usize)
            .balanced(6);
        spec.holder_capacity = cap;
        let r = engine.start_feed(spec).unwrap().wait().unwrap();
        t3.row([cap.to_string(), fmt_rate(r.throughput)]);
    }
    t3.print("Ablation 3: partition-holder queue depth (§5.3)");

    // 4. Fault-tolerance overhead on a fault-free run.
    let mut t4 = Table::new(["configuration", "throughput (rec/s)", "checkpoints"]);
    for (label, supervised) in
        [("unsupervised", false), ("supervised + checkpoints every 2 batches", true)]
    {
        let engine = IngestionEngine::with_nodes(6);
        setup_tweet_datasets(engine.catalog()).unwrap();
        let sc = setup_scenario(engine.catalog(), ScenarioKey::SafetyRating, &scale, 7).unwrap();
        let records = TweetGenerator::new(42).batch(0, tweets);
        let mut spec = FeedSpec::new("ft", "Tweets", VecAdapter::factory(records))
            .with_function(&sc.function)
            .with_batch_size(BATCH_1X as usize)
            .balanced(6);
        if supervised {
            let mut sup = SupervisionSpec {
                parse: ErrorPolicy::SkipToDeadLetter,
                enrich: ErrorPolicy::retry(RetryPolicy::default(), Fallback::DeadLetter),
                checkpoint_interval: Some(2),
                ..Default::default()
            };
            sup.restart.max_restarts = 2;
            spec = spec.with_supervision(sup);
        }
        let r = engine.start_feed(spec).unwrap().wait().unwrap();
        t4.row([label.to_owned(), fmt_rate(r.throughput), r.checkpoints.to_string()]);
    }
    t4.print("Ablation 4: fault-tolerance overhead (zero faults injected)");
}

//! Invoke-overhead microbenchmark: resident task pool vs spawn-per-run.
//!
//! Both sides execute the same two-stage job (source → round-robin →
//! counting sink) on the same cluster with zero modeled dispatch cost,
//! so the difference is pure execution-model overhead: thread spawn +
//! channel wiring per invocation (spawn-per-run) vs an activation
//! message to parked workers (pool). `ingest_bench` (the `scripts/
//! bench.sh` binary) reports the same comparison as JSON.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use idea_adm::Value;
use idea_hyracks::operator::{FnOperator, FnSource};
use idea_hyracks::{
    run_job, Cluster, ConnectorSpec, Frame, FrameSink, JobSpec, Operator, TaskContext,
};

/// Two-stage job: each source partition emits `records` ints, a
/// round-robin connector fans them out, the sink stage counts them.
fn emit_count_spec(records: usize, counter: Arc<AtomicU64>) -> JobSpec {
    JobSpec::new("invoke-overhead")
        .stage(
            "emit",
            ConnectorSpec::RoundRobin,
            Arc::new(move |_ctx: &TaskContext| {
                Box::new(FnSource(move |sink: &mut dyn FrameSink, _ctx: &mut TaskContext| {
                    sink.push(Frame::from_records((0..records as i64).map(Value::Int).collect()))
                })) as Box<dyn Operator>
            }),
        )
        .stage(
            "count",
            ConnectorSpec::OneToOne,
            Arc::new(move |_ctx: &TaskContext| {
                let counter = counter.clone();
                Box::new(FnOperator(
                    move |f: Frame, _sink: &mut dyn FrameSink, _ctx: &mut TaskContext| {
                        counter.fetch_add(f.len() as u64, Ordering::Relaxed);
                        Ok(())
                    },
                )) as Box<dyn Operator>
            }),
        )
}

fn bench_invoke(c: &mut Criterion) {
    const NODES: usize = 4;
    const RECORDS: usize = 64;

    let cluster = Cluster::with_nodes(NODES);
    let counter = Arc::new(AtomicU64::new(0));
    let id = cluster.deploy_job(emit_count_spec(RECORDS, counter.clone()));
    c.bench_function("invoke_predeployed_pool", |b| {
        b.iter(|| cluster.invoke_deployed(id, Value::Missing).unwrap().join().unwrap())
    });

    let spec = emit_count_spec(RECORDS, counter);
    c.bench_function("invoke_spawn_per_run", |b| {
        b.iter(|| run_job(&cluster, &spec, Value::Missing).unwrap().join().unwrap())
    });
}

criterion_group!(benches, bench_invoke);
criterion_main!(benches);

//! Figure 31 — throughput (a) and speed-up (b) vs cluster size
//! {6,12,18,24} for the four complex UDFs plus Naive Nearby Monuments,
//! batch 16X. Calibrated cluster model.

use idea_bench::{calibrate_cost_model, calibrate_scenario, table::fmt_rate, Table, BATCH_16X};
use idea_clustersim::{simulate, PipelineKind, SimConfig};
use idea_workload::{ScenarioKey, WorkloadScale};

const CASES: [ScenarioKey; 5] = [
    ScenarioKey::NearbyMonuments,
    ScenarioKey::NaiveNearbyMonuments,
    ScenarioKey::SuspiciousNames,
    ScenarioKey::TweetContext,
    ScenarioKey::WorrisomeTweets,
];

fn main() {
    let base = calibrate_cost_model().with_paper_control_plane();
    let tweets = idea_bench::env_sim_tweets();
    let scale = WorkloadScale::scaled(idea_bench::env_ref_scale());
    let sample = (idea_bench::env_tweets() / 4).max(100);
    let nodes_axis = [6usize, 12, 18, 24];

    let mut tput = Table::new(
        ["use case"]
            .into_iter()
            .map(String::from)
            .chain(nodes_axis.iter().map(|n| n.to_string())),
    );
    let mut speedup = Table::new(
        ["use case"]
            .into_iter()
            .map(String::from)
            .chain(nodes_axis.iter().map(|n| n.to_string())),
    );

    for key in CASES {
        let costs = calibrate_scenario(key, &scale, sample);
        let mut cost = base;
        cost.build_per_row = costs.build_per_row();
        let run = |nodes: usize| {
            let cfg = SimConfig {
                nodes,
                intake_nodes: nodes,
                batch_size: BATCH_16X,
                total_records: tweets,
                ref_rows: costs.ref_rows,
                enrich: costs.enrich_kind(key),
                pipeline: PipelineKind::Dynamic,
                computing_stages: 3,
            };
            simulate(&cost, &cfg).throughput
        };
        let base_tput = run(6);
        let mut trow = vec![key.label().to_owned()];
        let mut srow = vec![key.label().to_owned()];
        for &n in &nodes_axis {
            let t = run(n);
            trow.push(fmt_rate(t));
            srow.push(format!("{:.2}", t / base_tput));
        }
        tput.row(trow);
        speedup.row(srow);
    }
    tput.print("Figure 31(a): complex-UDF throughput vs cluster size, cluster model");
    speedup.print("Figure 31(b): speed-up vs 6 nodes");
    println!("(paper shape: Naive Nearby Monuments starts lowest but keeps scaling —");
    println!(" its reference partitions shrink with the cluster; the indexed variant");
    println!(" is fastest but broadcast-limited; gains level off as job overhead grows)");
}

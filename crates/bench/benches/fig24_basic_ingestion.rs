//! Figure 24 — 10M-tweet basic ingestion speed-up over 1–24 nodes.
//!
//! Series: Static Ingestion, Balanced Static, Dynamic 1X/4X/16X,
//! Balanced Dynamic 1X/4X/16X (batch sizes 420/1680/6720 records/job).
//!
//! The node sweep runs on the calibrated cluster model (this host has
//! one core — see DESIGN.md); a real-engine 3-node spot check validates
//! the static-vs-dynamic ordering the model predicts.

use idea_bench::{calibrate_cost_model, table::fmt_rate, Table, BATCH_16X, BATCH_1X, BATCH_4X};
use idea_clustersim::{simulate, PipelineKind, SimConfig};

fn main() {
    let cost = calibrate_cost_model().with_paper_control_plane();
    println!("cost model (measured CPU costs + paper-era control plane): {cost:?}");
    let total = idea_bench::env_sim_tweets() * 10; // Fig 24 uses 10M in the paper

    let nodes_axis = [1usize, 2, 3, 4, 5, 6, 12, 18, 24];
    let mut table = Table::new(
        ["series"]
            .into_iter()
            .map(String::from)
            .chain(nodes_axis.iter().map(|n| n.to_string())),
    );

    let mut series = |label: &str, balanced: bool, pipeline: PipelineKind, batch: u64| {
        let mut row = vec![label.to_owned()];
        for &n in &nodes_axis {
            let cfg = SimConfig { pipeline, ..SimConfig::basic(n, balanced, batch, total) };
            row.push(fmt_rate(simulate(&cost, &cfg).throughput));
        }
        table.row(row);
    };

    series("Static Ingestion", false, PipelineKind::Static, BATCH_1X);
    series("Balanced Static", true, PipelineKind::Static, BATCH_1X);
    series("Dynamic 1X", false, PipelineKind::Dynamic, BATCH_1X);
    series("Dynamic 4X", false, PipelineKind::Dynamic, BATCH_4X);
    series("Dynamic 16X", false, PipelineKind::Dynamic, BATCH_16X);
    series("Balanced Dynamic 1X", true, PipelineKind::Dynamic, BATCH_1X);
    series("Balanced Dynamic 4X", true, PipelineKind::Dynamic, BATCH_4X);
    series("Balanced Dynamic 16X", true, PipelineKind::Dynamic, BATCH_16X);

    table.print(&format!(
        "Figure 24: basic ingestion throughput (records/s), {total} tweets, cluster model"
    ));

    // Real-engine spot check (3 nodes, small record count): the new
    // framework without UDFs should be within a small factor of the old
    // one — the decoupling overhead the paper measures.
    let tweets = idea_bench::env_tweets();
    let scale = idea_workload::WorkloadScale::tiny();
    let mk = |mode| {
        idea_bench::run_enrichment(
            &idea_bench::EnrichmentRun::new(None, tweets, scale).nodes(3).mode(mode),
        )
    };
    let stat = mk(idea_core::PipelineMode::Static);
    let dyn_ = mk(idea_core::PipelineMode::Decoupled);
    let mut spot = Table::new(["pipeline", "throughput (rec/s)", "computing jobs"]);
    spot.row(["static (old framework)".into(), fmt_rate(stat.throughput), "0".to_owned()]);
    spot.row([
        "decoupled (new framework)".into(),
        fmt_rate(dyn_.throughput),
        dyn_.computing_jobs.to_string(),
    ]);
    spot.print(&format!("Figure 24 spot check: real engine, 3 nodes, {tweets} tweets"));
}

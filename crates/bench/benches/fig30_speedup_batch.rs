//! Figure 30 — speed-up of 24 vs 6 nodes for all eight UDFs × batch
//! 1X/4X/16X (ideal = 4). Calibrated cluster model.

use idea_bench::{calibrate_cost_model, calibrate_scenario, Table, BATCH_16X, BATCH_1X, BATCH_4X};
use idea_clustersim::{simulate, PipelineKind, SimConfig};
use idea_workload::{ScenarioKey, WorkloadScale};

const ALL: [ScenarioKey; 8] = [
    ScenarioKey::SafetyRating,
    ScenarioKey::LargestReligions,
    ScenarioKey::ReligiousPopulation,
    ScenarioKey::FuzzySuspects,
    ScenarioKey::NearbyMonuments,
    ScenarioKey::SuspiciousNames,
    ScenarioKey::TweetContext,
    ScenarioKey::WorrisomeTweets,
];

fn main() {
    let base = calibrate_cost_model().with_paper_control_plane();
    let tweets = idea_bench::env_sim_tweets();
    let scale = WorkloadScale::scaled(idea_bench::env_ref_scale());
    let sample = (idea_bench::env_tweets() / 4).max(100);

    let mut table = Table::new(["use case", "1X", "4X", "16X", "(ideal)"]);
    for key in ALL {
        let costs = calibrate_scenario(key, &scale, sample);
        let mut cost = base;
        cost.build_per_row = costs.build_per_row();
        let throughput = |nodes: usize, batch: u64| {
            let cfg = SimConfig {
                nodes,
                intake_nodes: nodes,
                batch_size: batch,
                total_records: tweets,
                ref_rows: costs.ref_rows,
                enrich: costs.enrich_kind(key),
                pipeline: PipelineKind::Dynamic,
                computing_stages: 3,
            };
            simulate(&cost, &cfg).throughput
        };
        let speedup = |batch| format!("{:.2}", throughput(24, batch) / throughput(6, batch));
        table.row([
            key.label().to_owned(),
            speedup(BATCH_1X),
            speedup(BATCH_4X),
            speedup(BATCH_16X),
            "4.00".to_owned(),
        ]);
    }
    table.print("Figure 30: speed-up 24 vs 6 nodes per batch size, cluster model");
    println!("(paper shape: simple UDFs speed up poorly — their refresh periods are");
    println!(" already tiny, so activation overhead dominates; bigger batches and");
    println!(" heavier UDFs push the speed-up toward the ideal 4x; the index join");
    println!(" of Nearby Monuments is broadcast-bound)");
}

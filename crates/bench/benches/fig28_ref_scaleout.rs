//! Figure 28 — reference-data scale-out: reference sizes 1X→4X with
//! cluster sizes 6→24, batch 16X. Calibrated cluster model (per-record
//! and build costs measured from the real engine at each reference
//! size).

use idea_bench::{calibrate_cost_model, calibrate_scenario, table::fmt_rate, Table, BATCH_16X};
use idea_clustersim::{simulate, PipelineKind, SimConfig};
use idea_workload::{ScenarioKey, WorkloadScale};

fn main() {
    let base = calibrate_cost_model().with_paper_control_plane();
    let tweets = idea_bench::env_sim_tweets();
    let ref_scale = idea_bench::env_ref_scale();
    let sample = (idea_bench::env_tweets() / 4).max(100);

    let ks = [1usize, 2, 3, 4];
    let mut table = Table::new(
        ["use case"]
            .into_iter()
            .map(String::from)
            .chain(ks.iter().map(|k| format!("{} nodes / {k}X ref", 6 * k))),
    );

    for key in ScenarioKey::FIGURE25 {
        let mut row = vec![key.label().to_owned()];
        for &k in &ks {
            let scale = WorkloadScale::scaled(ref_scale).times(k);
            let costs = calibrate_scenario(key, &scale, sample);
            let mut cost = base;
            cost.build_per_row = costs.build_per_row();
            let cfg = SimConfig {
                nodes: 6 * k,
                intake_nodes: 6 * k,
                batch_size: BATCH_16X,
                total_records: tweets,
                ref_rows: costs.ref_rows,
                enrich: costs.enrich_kind(key),
                pipeline: PipelineKind::Dynamic,
                computing_stages: 3,
            };
            row.push(fmt_rate(simulate(&cost, &cfg).throughput));
        }
        table.row(row);
    }
    table.print(&format!(
        "Figure 28: reference scale-out (records/s), {tweets} tweets, cluster model"
    ));
    println!("(paper shape: throughput drops only slightly as reference data and");
    println!(" cluster grow together — per-node build work stays constant)");
}

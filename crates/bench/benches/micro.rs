//! Criterion microbenchmarks over the substrates: the per-operation
//! costs that feed the cluster-model calibration.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use idea_adm::functions::similarity::{edit_distance, edit_distance_within};
use idea_adm::value::{Circle, Point};
use idea_adm::Value;
use idea_query::{apply_function, Catalog, ExecContext};
use idea_storage::dataset::{Dataset, DatasetConfig};
use idea_storage::index::RTree;
use idea_workload::scenarios::{setup_scenario, setup_tweet_datasets};
use idea_workload::{ScenarioKey, TweetGenerator, WorkloadScale};

fn bench_json(c: &mut Criterion) {
    let gen = TweetGenerator::new(1);
    let tweet = gen.generate(42);
    c.bench_function("json_parse_tweet", |b| {
        b.iter(|| idea_adm::json::parse(std::hint::black_box(tweet.as_bytes())).unwrap())
    });
    let parsed = idea_adm::json::parse(tweet.as_bytes()).unwrap();
    c.bench_function("json_print_tweet", |b| {
        b.iter(|| idea_adm::json::to_string(std::hint::black_box(&parsed)))
    });
}

fn bench_lsm(c: &mut Criterion) {
    let dt = idea_adm::Datatype::new("T").field("id", idea_adm::TypeTag::Int64);
    c.bench_function("lsm_upsert", |b| {
        let ds = Dataset::new("D", dt.clone(), "id", DatasetConfig::default());
        let mut i = 0i64;
        b.iter(|| {
            ds.upsert(Value::object([("id", Value::Int(i % 10_000)), ("v", Value::Int(i))]))
                .unwrap();
            i += 1;
        })
    });
    let ds = Dataset::new("D2", dt, "id", DatasetConfig::default());
    for i in 0..10_000i64 {
        ds.insert(Value::object([("id", Value::Int(i))])).unwrap();
    }
    ds.flush();
    c.bench_function("lsm_point_get", |b| {
        let mut i = 0i64;
        b.iter(|| {
            std::hint::black_box(ds.get(&Value::Int(i % 10_000)).unwrap());
            i += 7;
        })
    });
    c.bench_function("lsm_snapshot_scan_10k", |b| {
        b.iter(|| {
            let snap = ds.snapshot();
            std::hint::black_box(snap.iter().count())
        })
    });
}

fn bench_rtree(c: &mut Criterion) {
    let mut t = RTree::new();
    for i in 0..50_000i64 {
        let x = (i % 500) as f64 * 0.36 - 90.0;
        let y = (i / 500) as f64 * 3.6 - 180.0;
        t.insert(Point::new(x, y), Value::Int(i));
    }
    c.bench_function("rtree_probe_50k", |b| {
        let mut i = 0i64;
        b.iter(|| {
            let cx = ((i * 37) % 180 - 90) as f64;
            let cy = ((i * 73) % 360 - 180) as f64;
            i += 1;
            std::hint::black_box(t.query_circle(&Circle::new(Point::new(cx, cy), 1.5)).len())
        })
    });
}

fn bench_edit_distance(c: &mut Criterion) {
    let (a, b_) = ("johnathansmithson", "jonathansmythsen");
    c.bench_function("edit_distance_full", |b| {
        b.iter(|| edit_distance(std::hint::black_box(a), std::hint::black_box(b_)))
    });
    c.bench_function("edit_distance_banded_t4", |b| {
        b.iter(|| edit_distance_within(std::hint::black_box(a), std::hint::black_box(b_), 4))
    });
}

fn bench_enrichment(c: &mut Criterion) {
    // Per-record hash-join probe (the Safety Rating steady state) and
    // the per-batch build, separately.
    let catalog = Catalog::new(1);
    setup_tweet_datasets(&catalog).unwrap();
    let scale = WorkloadScale::scaled(0.01);
    let sc = setup_scenario(&catalog, ScenarioKey::SafetyRating, &scale, 7).unwrap();
    let gen = TweetGenerator::new(5);
    let tweets: Vec<Value> = (0..64)
        .map(|i| idea_adm::json::parse(gen.generate(i).as_bytes()).unwrap())
        .collect();

    c.bench_function("enrich_probe_safety_rating", |b| {
        let mut ctx = ExecContext::new(catalog.clone());
        apply_function(&mut ctx, &sc.function, &[tweets[0].clone()]).unwrap();
        let mut i = 0;
        b.iter(|| {
            let t = &tweets[i % tweets.len()];
            i += 1;
            apply_function(&mut ctx, &sc.function, std::hint::black_box(std::slice::from_ref(t)))
                .unwrap()
        })
    });
    c.bench_function("enrich_build_safety_rating", |b| {
        // A fresh context per iteration: measures the per-batch state
        // rebuild that Model 2 pays.
        b.iter_batched(
            || ExecContext::new(catalog.clone()),
            |mut ctx| {
                apply_function(&mut ctx, &sc.function, &[tweets[0].clone()]).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_hash_vs_index(c: &mut Criterion) {
    // Spatial enrichment with and without the R-tree (the Figure 31
    // naive-vs-indexed contrast at micro scale).
    let catalog = Catalog::new(1);
    setup_tweet_datasets(&catalog).unwrap();
    let scale = WorkloadScale { monuments: 20_000, ..WorkloadScale::tiny() };
    let sc = setup_scenario(&catalog, ScenarioKey::NearbyMonuments, &scale, 7).unwrap();
    idea_query::Session::new(catalog.clone())
        .run_script(
            r#"CREATE FUNCTION naiveNearby(t) {
            LET nearby_monuments =
                (SELECT VALUE m.monument_id FROM monumentList /*+ noindex */ m
                 WHERE spatial_intersect(m.monument_location,
                     create_circle(create_point(t.latitude, t.longitude), 1.5)))
            SELECT t.*, nearby_monuments
        };"#,
        )
        .unwrap();
    let gen = TweetGenerator::new(6);
    let tweets: Vec<Value> = (0..32)
        .map(|i| idea_adm::json::parse(gen.generate(i).as_bytes()).unwrap())
        .collect();

    let mut ctx = ExecContext::new(catalog.clone());
    let mut i = 0;
    c.bench_function("spatial_probe_rtree_20k", |b| {
        b.iter(|| {
            let t = &tweets[i % tweets.len()];
            i += 1;
            apply_function(&mut ctx, &sc.function, std::slice::from_ref(t)).unwrap()
        })
    });
    // Warm the naive materialization once, then measure per-record scans.
    apply_function(&mut ctx, "naiveNearby", &[tweets[0].clone()]).unwrap();
    c.bench_function("spatial_scan_naive_20k", |b| {
        b.iter(|| {
            let t = &tweets[i % tweets.len()];
            i += 1;
            apply_function(&mut ctx, "naiveNearby", std::slice::from_ref(t)).unwrap()
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_json, bench_lsm, bench_rtree, bench_edit_distance,
              bench_enrichment, bench_hash_vs_index
}
criterion_main!(benches);

// Silence the unused-import lint for Arc on configurations where the
// macro expansion does not use it.
#[allow(dead_code)]
fn _keep(_: Arc<()>) {}

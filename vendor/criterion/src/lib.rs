//! Vendored, minimal criterion-compatible bench harness so
//! `cargo bench` targets build and run without network access. It
//! implements the subset the repo's benches use — `Criterion`
//! builder knobs, `bench_function`, `Bencher::{iter, iter_batched}`,
//! and the `criterion_group!`/`criterion_main!` macros — reporting
//! mean wall-clock time per iteration on stdout. No statistics,
//! plots, or comparison baselines.

use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

/// How much of the workload each batch holds in `iter_batched`; the
/// vendored harness treats all variants identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 { Duration::ZERO } else { b.elapsed / b.iters as u32 };
        println!("{name:<40} {:>12} iters   {:>14?}/iter", b.iters, per_iter);
        self
    }
}

pub struct Bencher {
    budget: Duration,
    warm_up: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is
    /// spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(routine(setup()));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let started = Instant::now();
        while started.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = measured;
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_runs_setup_and_routine() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}

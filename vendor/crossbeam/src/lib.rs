//! Vendored, API-compatible subset of `crossbeam` so the workspace
//! builds without network access: MPMC `channel::{bounded, unbounded}`
//! with the same blocking, disconnect, and iteration semantics the
//! runtime relies on, implemented over `std::sync::{Mutex, Condvar}`.

pub mod channel;

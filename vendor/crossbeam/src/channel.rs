//! Multi-producer multi-consumer channels with optional capacity
//! bounds. Semantics match `crossbeam-channel` for the operations the
//! workspace uses:
//!
//! - `send` blocks while a bounded queue is full; it fails only once
//!   every `Receiver` has been dropped.
//! - `recv` blocks while the queue is empty; it fails only once every
//!   `Sender` has been dropped *and* the queue has drained.
//! - Both `Sender` and `Receiver` are `Clone` (MPMC).
//! - `Receiver::iter()` yields until the channel disconnects.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned by [`Sender::send`]: every receiver is gone. The
/// unsent message is handed back.
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
pub enum TrySendError<T> {
    Full(T),
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`]: the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates a channel whose queue holds at most `cap` messages; `send`
/// blocks while it is full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_cap(Some(cap))
}

/// Creates a channel with an unbounded queue; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_cap(None)
}

fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.shared.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.shared.cap {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Blocked receivers must observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks for at most `timeout` waiting for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator: yields messages until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Non-blocking iterator: drains whatever is queued right now.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            // Blocked senders must observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_and_len() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        match tx.try_send(2) {
            Err(TrySendError::Full(2)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        let t = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn mpmc_conserves() {
        let (tx, rx) = bounded(4);
        let mut senders = Vec::new();
        for s in 0..4 {
            let tx = tx.clone();
            senders.push(thread::spawn(move || {
                for i in 0..100 {
                    tx.send(s * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut readers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            readers.push(thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for s in senders {
            s.join().unwrap();
        }
        let total: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}

//! Vendored, API-compatible subset of `rand` 0.9 so the workspace
//! builds without network access. Only what the workload generators
//! use: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::random_range` over integer and float ranges.
//!
//! `StdRng` here is splitmix64 — deterministic and well-distributed,
//! which is all the synthetic-data generators need (they already fix
//! seeds for reproducibility). It is **not** cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniformly samples from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random_range(0.0..1.0) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface; only the `u64` convenience constructor is
/// provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A type that can be drawn uniformly from a bounded interval.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_between<G: RngCore + ?Sized>(
        rng: &mut G,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// A range that knows how to sample one uniform value from an RNG.
///
/// The blanket impls over `T: SampleUniform` are deliberate (mirroring
/// real rand): with exactly one applicable impl per range shape, type
/// inference unifies integer literals with the use site, so
/// `v[rng.random_range(0..4)]` makes the literals `usize`.
pub trait SampleRange<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<G: RngCore + ?Sized>(
                rng: &mut G,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<G: RngCore + ?Sized>(
                rng: &mut G,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                // 53 uniform mantissa bits → unit interval, then scale.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1_000_000i64), b.random_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.random_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let u: u8 = r.random_range(0..26u8);
            assert!(u < 26);
            let f = r.random_range(-90.0..90.0f64);
            assert!((-90.0..90.0).contains(&f));
            let i = r.random_range(1..=6i64);
            assert!((1..=6).contains(&i));
        }
    }

    #[test]
    fn covers_full_range() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Vendored, generation-only subset of `proptest` so the workspace's
//! property tests build and run without network access.
//!
//! Supported surface (what the repo's tests use):
//!
//! - the [`Strategy`] trait with `prop_map`, `prop_recursive`, `boxed`
//! - [`Just`], [`any`]`::<T>()`, integer/float range strategies, tuple
//!   strategies, regex-subset string strategies (`"[a-z]{1,6}"`,
//!   `"\\PC{0,80}"`, …)
//! - `prop::collection::vec`, `prop::sample::Index`
//! - the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`
//!   macros and `ProptestConfig::with_cases`
//!
//! Differences from real proptest: generation is deterministic per test
//! (seeded from the test name, overridable via `PROPTEST_SEED`), there
//! is **no shrinking**, and failures surface as ordinary panics. Case
//! count defaults to 32 and can be overridden with `PROPTEST_CASES`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 source used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEE_CE66_D1CE_B00C }
    }

    /// Seeds deterministically from a test name (FNV-1a), honouring a
    /// `PROPTEST_SEED` override for replaying a run.
    pub fn for_test(name: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                return Self::new(seed);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursively extends this leaf strategy `depth` times via `f`.
    /// (`_size`/`_branch` are accepted for API compatibility; depth
    /// limiting alone bounds the generated values.)
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = f(current).boxed();
            current = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.options[0].1.generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Arbitrary + any()
// ---------------------------------------------------------------------------

/// Types with a canonical strategy, reachable through [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, moderately sized doubles.
        (rng.unit_f64() - 0.5) * 2.0e9
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------------

/// `&'static str` patterns act as string strategies over a regex
/// subset: character classes (`[a-z0-9é]`), `\PC` (any printable), and
/// `{m,n}` / `{n}` repetition suffixes; anything else is a literal.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let pool: Vec<char> = match chars[i] {
            '[' => {
                let mut pool = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                pool.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        pool.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                pool
            }
            '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                i += 3;
                // Printable, non-control characters: ASCII plus a few
                // multi-byte code points to exercise UTF-8 handling.
                let mut pool: Vec<char> = (0x20u8..0x7F).map(char::from).collect();
                pool.extend(['é', '€', 'λ', '中', '🙂']);
                pool
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = parse_repeat(&chars, &mut i);
        let count = min + rng.below((max - min + 1) as u64) as usize;
        if pool.is_empty() {
            continue;
        }
        for _ in 0..count {
            out.push(pool[rng.below(pool.len() as u64) as usize]);
        }
    }
    out
}

/// Parses a `{m,n}` or `{n}` suffix at `*i`, advancing past it;
/// defaults to `{1,1}` when absent.
fn parse_repeat(chars: &[char], i: &mut usize) -> (usize, usize) {
    if chars.get(*i) != Some(&'{') {
        return (1, 1);
    }
    let close = match chars[*i..].iter().position(|&c| c == '}') {
        Some(off) => *i + off,
        None => return (1, 1),
    };
    let body: String = chars[*i + 1..close].iter().collect();
    *i = close + 1;
    let mut parts = body.splitn(2, ',');
    let min: usize = parts.next().unwrap_or("1").trim().parse().unwrap_or(1);
    let max: usize = match parts.next() {
        Some(m) => m.trim().parse().unwrap_or(min),
        None => min,
    };
    (min, max.max(min))
}

// ---------------------------------------------------------------------------
// Collections and samples
// ---------------------------------------------------------------------------

/// Size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_exclusive: n + 1 }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use
    /// time; `index(len)` maps it uniformly into `[0, len)`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Weighted (`w => strategy`) or unweighted choice between strategies
/// producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Assertion macros: without shrinking these are plain panics, which
/// the deterministic per-test seed makes reproducible.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The test runner: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (via its written attributes) looping over
/// generated cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, String)> {
        (0i64..10, "[a-c]{1,3}")
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0i64..50, y in -2.0f64..2.0, z in 1usize..5) {
            prop_assert!((0..50).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..5).contains(&z));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(any::<i64>(), 0..20)) {
            prop_assert!(v.len() < 20);
        }

        #[test]
        fn regex_subset(s in "[a-z]{1,6}", t in "\\PC{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.chars().count() <= 8);
        }

        #[test]
        fn mapped_pairs(p in arb_pair()) {
            prop_assert!(p.0 < 10 && !p.1.is_empty());
        }

        #[test]
        fn index_in_range(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn weighted_oneof(v in prop_oneof![4 => Just(1), 1 => Just(2)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::new(99);
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4, "depth limit violated: {t:?}");
        }
    }
}

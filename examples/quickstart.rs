//! Quickstart: the paper's introductory workflow, end to end.
//!
//! Creates a tweet dataset and a sensitive-keyword reference dataset,
//! attaches the Figure 8 safety-check UDF to a data feed, ingests a
//! thousand synthetic tweets through the decoupled pipeline, and runs
//! the Figure 9 analytical query over the *enriched* data.
//!
//! Run with: `cargo run --example quickstart`

use idea::prelude::*;
use idea::workload::scenarios::{setup_scenario, setup_tweet_datasets};
use idea::workload::{ScenarioKey, TweetGenerator, WorkloadScale};

fn main() {
    // A 4-node AsterixDB-like instance (simulated cluster + catalog +
    // Active Feed Manager).
    let engine = IngestionEngine::with_nodes(4);

    // DDL: tweet datasets plus the SensitiveWords reference data and the
    // tweetSafetyCheck SQL++ UDF (paper Figures 1 and 8).
    setup_tweet_datasets(engine.catalog()).expect("DDL");
    let scale = WorkloadScale { sensitive_words: 2_000, ..WorkloadScale::tiny() };
    let scenario =
        setup_scenario(engine.catalog(), ScenarioKey::SafetyCheck, &scale, 7).expect("scenario");

    // A feed over 1000 synthetic tweets with the UDF attached — the
    // DDL equivalent is:
    //   CONNECT FEED TweetFeed TO DATASET Tweets APPLY FUNCTION tweetSafetyCheck;
    let tweets = TweetGenerator::new(1).batch(0, 1_000);
    let spec = FeedSpec::new("TweetFeed", "Tweets", VecAdapter::factory(tweets))
        .with_function(&scenario.function)
        .with_batch_size(100);
    let handle = engine.start_feed(spec).expect("start feed");
    let report = handle.wait().expect("feed run");

    println!(
        "ingested {} tweets in {:?} ({:.0} records/s) across {} computing jobs",
        report.records_stored, report.elapsed, report.throughput, report.computing_jobs
    );

    // Every number the report aggregates (and more: queue gauges, batch
    // latency percentiles, LSM flush counts) lives in the metrics
    // registry; snapshots also render as an ADM value for SQL++.
    let snapshot = engine.metrics().snapshot();
    println!("\nfeed metrics:");
    for entry in snapshot.under("feed/TweetFeed") {
        println!("  {}", entry.name);
    }
    let p99 = snapshot.histogram("feed/TweetFeed/batch_latency").expect("histogram").p99();
    println!("p99 batch latency: {p99:?}");

    // The paper's Figure 9 analytical query — over already-enriched data,
    // so no UDF evaluation at query time.
    let result = engine
        .new_session(SessionConfig::new())
        .query(
            r#"SELECT t.country Country, count(t) Num
           FROM Tweets t
           WHERE t.safety_check_flag = "Red"
           GROUP BY t.country
           ORDER BY count(t) DESC, t.country
           LIMIT 5"#,
        )
        .expect("analytical query");

    println!("top flagged countries:");
    for row in result.as_array().expect("rows") {
        println!("  {row}");
    }
}

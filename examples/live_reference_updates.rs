//! The paper's core claim, demonstrated: a *stateful* SQL++ UDF on a
//! feed picks up reference-data updates while the feed is running —
//! because the per-batch computing model (Model 2) rebuilds the UDF's
//! intermediate state every batch. A stream-model (Model 3) feed run on
//! the same input stays blind to the update, which is exactly the old
//! framework's limitation (§4.3.4).
//!
//! Run with: `cargo run --example live_reference_updates`

use std::sync::Arc;

use idea::prelude::*;

fn tweet(id: i64) -> String {
    format!(r#"{{"id": {id}, "text": "the train is leaving", "country": "DE"}}"#)
}

fn slow_feed(n: i64, per_second: f64) -> AdapterFactory {
    let records: Arc<Vec<String>> = Arc::new((0..n).map(tweet).collect());
    Arc::new(move |_, _| {
        let inner = Box::new(VecAdapter::new((*records).clone()));
        Ok(Box::new(RateLimitedAdapter::new(inner, per_second)) as Box<dyn Adapter>)
    })
}

fn run(engine: &IngestionEngine, name: &str, model: ComputingModel) -> (u64, usize) {
    let session = engine.new_session(SessionConfig::new());
    // Reset the keyword list: "train" is NOT sensitive yet.
    session.run_script(r#"DELETE FROM SensitiveWords w;"#).unwrap();
    session.run_script(r#"DELETE FROM Tweets t;"#).unwrap();

    let spec = FeedSpec::new(name, "Tweets", slow_feed(200, 400.0))
        .with_function("tweetSafetyCheck")
        .with_batch_size(25)
        .with_model(model);
    let handle = engine.start_feed(spec).unwrap();

    // Mid-feed, the reference data changes: "train" becomes sensitive
    // for DE (an analyst reacting to events, §3.3's UPSERT path).
    std::thread::sleep(std::time::Duration::from_millis(150));
    session
        .run_script(
            r#"UPSERT INTO SensitiveWords ([{"wid": 1, "country": "DE", "word": "train"}]);"#,
        )
        .unwrap();

    let report = handle.wait().unwrap();
    let reds = session
        .query(r#"SELECT VALUE t.id FROM Tweets t WHERE t.safety_check_flag = "Red""#)
        .unwrap();
    (report.records_stored, reds.as_array().unwrap().len())
}

fn main() {
    let engine = IngestionEngine::with_nodes(2);
    engine
        .new_session(SessionConfig::new())
        .run_script(
            r#"
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
        CREATE TYPE WordType AS OPEN { wid: int64, country: string, word: string };
        CREATE DATASET SensitiveWords(WordType) PRIMARY KEY wid;
        CREATE FUNCTION tweetSafetyCheck(tweet) {
            LET safety_check_flag = CASE
              EXISTS(SELECT s FROM SensitiveWords s
                     WHERE tweet.country = s.country AND contains(tweet.text, s.word))
              WHEN true THEN "Red" ELSE "Green"
            END
            SELECT tweet.*, safety_check_flag
        };
        "#,
        )
        .unwrap();

    let (stored, reds) = run(&engine, "per-batch", ComputingModel::PerBatch);
    println!("Model 2 (per batch, the paper's design):");
    println!("  {stored} tweets stored, {reds} flagged Red");
    println!("  → tweets enriched after the mid-feed UPSERT saw the new keyword\n");

    let (stored, reds) = run(&engine, "stream", ComputingModel::Stream);
    println!("Model 3 (stream, the old framework's semantics):");
    println!("  {stored} tweets stored, {reds} flagged Red");
    println!("  → the hash table built at feed start never saw the update");
}

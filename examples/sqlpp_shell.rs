//! A minimal interactive SQL++ shell over the engine — type DDL, DML,
//! queries, and feed statements against an in-process cluster.
//!
//! Run with: `cargo run --example sqlpp_shell`
//! Then try:
//!
//! ```sqlpp
//! CREATE TYPE TweetType AS OPEN { id: int64, text: string };
//! CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
//! INSERT INTO Tweets ([{"id": 0, "text": "Let there be light"}]);
//! SELECT VALUE t.text FROM Tweets t;
//! ```

use std::io::{BufRead, Write};

use idea::prelude::*;

fn main() {
    let engine = IngestionEngine::with_nodes(2);
    println!("idea SQL++ shell — 2-node in-process cluster. Statements end with ';'.");
    println!("Ctrl-D to exit.\n");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("sql++> ");
        } else {
            print!("   ...> ");
        }
        std::io::stdout().flush().unwrap();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let statement = std::mem::take(&mut buffer);
        match engine.run_sqlpp(&statement) {
            Ok(outcomes) => {
                for outcome in outcomes {
                    match outcome {
                        ExecOutcome::Statement(idea::query::StatementResult::Value(v)) => {
                            match v.as_array() {
                                Some(rows) => {
                                    for row in rows {
                                        println!("{row}");
                                    }
                                    println!("({} row(s))", rows.len());
                                }
                                None => println!("{v}"),
                            }
                        }
                        ExecOutcome::Statement(idea::query::StatementResult::Count(n)) => {
                            println!("OK, {n} record(s)");
                        }
                        ExecOutcome::Statement(idea::query::StatementResult::Ok) => {
                            println!("OK");
                        }
                        ExecOutcome::FeedCreated => println!("feed created"),
                        ExecOutcome::FeedConnected => println!("feed connected"),
                        ExecOutcome::FeedStarted => println!("feed started"),
                        ExecOutcome::FeedStopped(report) => {
                            println!(
                                "feed stopped: {} records in {:?} ({:.0} rec/s)",
                                report.records_stored, report.elapsed, report.throughput
                            );
                        }
                    }
                }
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
    println!("\nbye");
}

//! An interactive SQL++ shell speaking the serve wire protocol over a
//! real TCP connection.
//!
//! With no arguments it starts an in-process 2-node engine, serves it
//! on an ephemeral localhost port, and connects to itself; pass an
//! address (`host:port`) to connect to an already-running server
//! instead. Either way every statement travels the full network path:
//! framed request out, streamed result batches back.
//!
//! Run with: `cargo run --example sqlpp_shell`
//! Then try:
//!
//! ```sqlpp
//! CREATE TYPE TweetType AS OPEN { id: int64, text: string };
//! CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
//! INSERT INTO Tweets ([{"id": 0, "text": "Let there be light"}]);
//! SELECT VALUE t.text FROM Tweets t;
//! ```

use std::io::{BufRead, Write};

use idea::prelude::*;

fn main() {
    // Keep the in-process server (when used) alive for the whole REPL.
    let mut _local: Option<(std::sync::Arc<IngestionEngine>, Server)> = None;
    let addr = match std::env::args().nth(1) {
        Some(addr) => addr,
        None => {
            let engine = IngestionEngine::with_nodes(2);
            let server = Server::start(engine.clone(), ServerConfig::default())
                .expect("start in-process server");
            let addr = server.local_addr().to_string();
            println!("serving an in-process 2-node cluster on {addr}");
            _local = Some((engine, server));
            addr
        }
    };

    let mut client = Client::connect(&addr, "shell").expect("connect");
    println!("idea SQL++ shell — connected to {addr}. Statements end with ';'.");
    println!("Ctrl-D to exit.\n");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("sql++> ");
        } else {
            print!("   ...> ");
        }
        std::io::stdout().flush().unwrap();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let statement = std::mem::take(&mut buffer);
        // Stream: each batch prints as it arrives off the socket.
        let summary = client.query_streamed(&statement, |batch| {
            for row in batch {
                println!("{row}");
            }
        });
        match summary {
            Ok(s) => println!("({} row(s) in {} batch(es))", s.rows, s.batches),
            Err(e) if e.is_shed() => eprintln!("shed: {e} — retry with backoff"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
    println!("\nbye");
}

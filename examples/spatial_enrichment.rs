//! Spatial enrichment with and without an R-tree: the paper's Nearby
//! Monuments use case (§7.2 case 5 and the §7.4.2 "naive" variant).
//!
//! Enriches geo-tagged tweets with the monuments within 1.5 degrees,
//! once through the R-tree index-nested-loop plan and once with the
//! `/*+ noindex */` hint forcing a per-record scan, and reports the
//! throughput gap plus the plans' probe statistics.
//!
//! Run with: `cargo run --release --example spatial_enrichment`

use std::time::Instant;

use idea::prelude::*;
use idea::query::{apply_function, ExecContext};
use idea::workload::scenarios::{setup_scenario, setup_tweet_datasets};
use idea::workload::{ScenarioKey, TweetGenerator, WorkloadScale};

fn main() {
    let catalog = idea::query::Catalog::new(2);
    setup_tweet_datasets(&catalog).expect("DDL");
    let scale = WorkloadScale { monuments: 50_000, ..WorkloadScale::tiny() };
    let indexed =
        setup_scenario(&catalog, ScenarioKey::NearbyMonuments, &scale, 7).expect("scenario");
    // The naive variant shares the monuments dataset — only its UDF
    // (with the noindex hint) needs registering.
    idea::query::Session::new(catalog.clone())
        .run_script(
            r#"CREATE FUNCTION naiveNearbyMonuments(t) {
            LET nearby_monuments =
                (SELECT VALUE m.monument_id
                 FROM monumentList /*+ noindex */ m
                 WHERE spatial_intersect(
                     m.monument_location,
                     create_circle(create_point(t.latitude, t.longitude), 1.5)))
            SELECT t.*, nearby_monuments
        };"#,
        )
        .expect("naive UDF");

    let gen = TweetGenerator::new(3);
    let tweets: Vec<Value> = (0..500)
        .map(|i| idea::adm::json::parse(gen.generate(i).as_bytes()).unwrap())
        .collect();

    for (label, function) in
        [("R-tree INLJ", indexed.function.as_str()), ("naive scan ", "naiveNearbyMonuments")]
    {
        let mut ctx = ExecContext::new(catalog.clone());
        let t0 = Instant::now();
        let mut total_matches = 0usize;
        for t in &tweets {
            let out = apply_function(&mut ctx, function, std::slice::from_ref(t)).unwrap();
            let rec = &out.as_array().unwrap()[0];
            total_matches += rec
                .as_object()
                .unwrap()
                .get("nearby_monuments")
                .unwrap()
                .as_array()
                .unwrap()
                .len();
        }
        let dt = t0.elapsed();
        println!(
            "{label}: {} tweets in {dt:?} ({:.0} rec/s), {total_matches} monument matches",
            tweets.len(),
            tweets.len() as f64 / dt.as_secs_f64(),
        );
        println!(
            "          index probes: {}, reference rows scanned: {}",
            ctx.stats.index_probes, ctx.stats.rows_scanned
        );
    }
    println!("\n(both plans return identical matches; the R-tree replaces a 50k-row");
    println!(" scan per tweet with a handful of node visits — paper §4.3.4 case 3)");
}

//! Resident task pools for predeployed jobs: reuse across invocations,
//! error isolation, and clean teardown (`undeploy_job`, `kill_node`,
//! engine drop). Companion to the spawn-per-run executor tests in
//! `idea-hyracks` — everything here goes through `deploy_job` /
//! `invoke_deployed`, i.e. the pooled path.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use idea_adm::Value;
use idea_hyracks::operator::{FnOperator, FnSource};
use idea_hyracks::{
    run_job, Cluster, ClusterConfig, ConnectorSpec, Frame, FrameSink, HyracksError, JobSpec,
    Operator, TaskContext,
};

/// Two-stage job: each source partition emits `param * 10 + partition`
/// (recording which thread ran it), a round-robin connector fans the
/// records out, and the sink stage collects them.
fn emit_collect_spec(
    threads: Arc<Mutex<Vec<(i64, ThreadId)>>>,
    out: Arc<Mutex<Vec<i64>>>,
) -> JobSpec {
    JobSpec::new("pool-test")
        .stage(
            "emit",
            ConnectorSpec::RoundRobin,
            Arc::new(move |_ctx: &TaskContext| {
                let threads = threads.clone();
                Box::new(FnSource(move |sink: &mut dyn FrameSink, ctx: &mut TaskContext| {
                    let param = ctx.param.as_int().expect("int param");
                    match param {
                        -1 => return Err(HyracksError::Operator("injected failure".into())),
                        -2 => panic!("injected panic"),
                        _ => {}
                    }
                    threads.lock().unwrap().push((param, std::thread::current().id()));
                    sink.push(Frame::from_records(vec![Value::Int(
                        param * 10 + ctx.partition as i64,
                    )]))
                })) as Box<dyn Operator>
            }),
        )
        .stage(
            "collect",
            ConnectorSpec::OneToOne,
            Arc::new(move |_ctx: &TaskContext| {
                let out = out.clone();
                Box::new(FnOperator(
                    move |f: Frame, _sink: &mut dyn FrameSink, _ctx: &mut TaskContext| {
                        out.lock().unwrap().extend(f.records().iter().map(|v| v.as_int().unwrap()));
                        Ok(())
                    },
                )) as Box<dyn Operator>
            }),
        )
}

#[test]
fn repeated_invocations_reuse_threads_without_state_leakage() {
    let cluster = Cluster::with_nodes(3);
    let threads = Arc::new(Mutex::new(Vec::new()));
    let out = Arc::new(Mutex::new(Vec::new()));
    let id = cluster.deploy_job(emit_collect_spec(threads.clone(), out.clone()));
    assert_eq!(cluster.deployed_jobs().resident_workers(), 6, "3 nodes x 2 stages parked");

    let mut first_threads: Option<HashSet<ThreadId>> = None;
    for param in 0..5i64 {
        cluster.invoke_deployed(id, Value::Int(param)).unwrap().join().unwrap();

        // Each invocation sees exactly its own parameter — nothing
        // carried over from the previous batch.
        let mut got: Vec<i64> = std::mem::take(&mut *out.lock().unwrap());
        got.sort_unstable();
        let want: Vec<i64> = (0..3).map(|p| param * 10 + p).collect();
        assert_eq!(got, want, "invocation {param} must only see its own records");

        // ...and runs on the same parked workers every time.
        let ran_on: HashSet<ThreadId> = std::mem::take(&mut *threads.lock().unwrap())
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert_eq!(ran_on.len(), 3, "one source worker per node");
        match &first_threads {
            None => first_threads = Some(ran_on),
            Some(first) => {
                assert_eq!(&ran_on, first, "invocations must reuse the resident workers")
            }
        }
    }
    assert_eq!(cluster.deployed_jobs().invocation_count(), 5);
    assert_eq!(cluster.deployed_jobs().resident_workers(), 6, "workers stay parked, not respawned");
}

#[test]
fn task_error_poisons_only_its_invocation() {
    let cluster = Cluster::with_nodes(2);
    let out = Arc::new(Mutex::new(Vec::new()));
    let id = cluster.deploy_job(emit_collect_spec(Arc::new(Mutex::new(Vec::new())), out.clone()));

    // Param -1 makes every source error out.
    let err = cluster.invoke_deployed(id, Value::Int(-1)).unwrap().join().unwrap_err();
    assert!(matches!(err, HyracksError::Operator(_)), "got {err:?}");

    // The pool recovers: the next invocation runs clean and sees none
    // of the failed invocation's state.
    cluster.invoke_deployed(id, Value::Int(4)).unwrap().join().unwrap();
    let mut got: Vec<i64> = out.lock().unwrap().clone();
    got.sort_unstable();
    assert_eq!(got, vec![40, 41]);
}

#[test]
fn operator_panic_is_contained_and_workers_survive() {
    let cluster = Cluster::with_nodes(2);
    let out = Arc::new(Mutex::new(Vec::new()));
    let id = cluster.deploy_job(emit_collect_spec(Arc::new(Mutex::new(Vec::new())), out.clone()));
    let before = cluster.deployed_jobs().resident_workers();

    // Param -2 makes every source panic; the pool must absorb it.
    let err = cluster.invoke_deployed(id, Value::Int(-2)).unwrap().join().unwrap_err();
    assert!(matches!(err, HyracksError::TaskPanic(_)), "got {err:?}");
    assert_eq!(
        cluster.deployed_jobs().resident_workers(),
        before,
        "a panicking operator must not kill resident workers"
    );

    cluster.invoke_deployed(id, Value::Int(1)).unwrap().join().unwrap();
    let mut got: Vec<i64> = out.lock().unwrap().clone();
    got.sort_unstable();
    assert_eq!(got, vec![10, 11]);
}

#[test]
fn undeploy_reaps_parked_workers() {
    let cluster = Cluster::with_nodes(3);
    let id = cluster.deploy_job(emit_collect_spec(
        Arc::new(Mutex::new(Vec::new())),
        Arc::new(Mutex::new(Vec::new())),
    ));
    assert_eq!(cluster.deployed_jobs().resident_workers(), 6);
    cluster.invoke_deployed(id, Value::Int(1)).unwrap().join().unwrap();

    assert!(cluster.undeploy_job(id));
    // undeploy joins the workers before returning — no polling needed.
    assert_eq!(cluster.deployed_jobs().resident_workers(), 0, "undeploy must reap every worker");
    assert!(cluster.invoke_deployed(id, Value::Int(2)).is_err());
}

#[test]
fn deferred_undeploy_removes_immediately_and_drains_workers() {
    let cluster = Cluster::with_nodes(3);
    let id = cluster.deploy_job(emit_collect_spec(
        Arc::new(Mutex::new(Vec::new())),
        Arc::new(Mutex::new(Vec::new())),
    ));
    cluster.invoke_deployed(id, Value::Int(1)).unwrap().join().unwrap();

    // The entry is gone synchronously — no new invocation can start —
    // but the joins ride on a reaper thread, so the worker count only
    // has to *drain* to zero, not be zero on return.
    assert!(cluster.undeploy_job_deferred(id));
    assert!(!cluster.undeploy_job_deferred(id));
    assert!(cluster.invoke_deployed(id, Value::Int(2)).is_err());

    let deadline = Instant::now() + Duration::from_secs(10);
    while cluster.deployed_jobs().resident_workers() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        cluster.deployed_jobs().resident_workers(),
        0,
        "deferred undeploy must still reap every worker"
    );
}

#[test]
fn kill_node_fails_invocations_and_teardown_stays_clean() {
    let cluster = Cluster::with_nodes(3);
    let out = Arc::new(Mutex::new(Vec::new()));
    let id = cluster.deploy_job(emit_collect_spec(Arc::new(Mutex::new(Vec::new())), out.clone()));
    cluster.invoke_deployed(id, Value::Int(1)).unwrap().join().unwrap();
    out.lock().unwrap().clear();

    cluster.kill_node(1);
    let err = cluster.invoke_deployed(id, Value::Int(2)).unwrap().join().unwrap_err();
    assert_eq!(err, HyracksError::NodeDown(1));

    // Teardown with a dead node must still reap every parked worker.
    assert!(cluster.undeploy_job(id));
    assert_eq!(cluster.deployed_jobs().resident_workers(), 0);

    // The supervisor's restart path: restore the node, redeploy, and
    // the fresh pool serves invocations again.
    cluster.restore_node(1);
    out.lock().unwrap().clear();
    let id2 = cluster.deploy_job(emit_collect_spec(Arc::new(Mutex::new(Vec::new())), out.clone()));
    cluster.invoke_deployed(id2, Value::Int(3)).unwrap().join().unwrap();
    let mut got: Vec<i64> = out.lock().unwrap().clone();
    got.sort_unstable();
    assert_eq!(got, vec![30, 31, 32]);
}

#[test]
fn engine_drop_reaps_pool_workers() {
    let probe;
    {
        let cluster = Cluster::with_nodes(2);
        let id = cluster.deploy_job(emit_collect_spec(
            Arc::new(Mutex::new(Vec::new())),
            Arc::new(Mutex::new(Vec::new())),
        ));
        cluster.invoke_deployed(id, Value::Int(1)).unwrap().join().unwrap();
        probe = cluster.deployed_jobs().resident_worker_probe();
        assert_eq!(probe.load(std::sync::atomic::Ordering::Acquire), 4);
        // No undeploy: dropping the engine itself must tear the pool
        // down via the registry.
    }
    assert_eq!(
        probe.load(std::sync::atomic::Ordering::Acquire),
        0,
        "dropping the cluster must join every parked pool worker"
    );
}

/// The back-pressure acceptance check: a producer blocked on a full
/// holder parks on a condvar and is woken by `fail()` immediately — no
/// sleep-poll loop, no lost wake-up.
#[test]
fn blocked_push_wakes_promptly_on_fail() {
    let m = idea_hyracks::PartitionHolderManager::new();
    let h = m.register("bp", idea_hyracks::HolderMode::Passive, 1).unwrap();
    h.push_frame(Frame::from_records(vec![Value::Int(0)])).unwrap();

    let h2 = h.clone();
    let producer = std::thread::spawn(move || {
        let start = Instant::now();
        let res = h2.push_frame(Frame::from_records(vec![Value::Int(1)]));
        (res, start.elapsed())
    });
    // Let the producer reach the blocked state, then fail the holder.
    std::thread::sleep(Duration::from_millis(50));
    assert!(!producer.is_finished(), "producer should be parked on the full holder");
    let failed_at = Instant::now();
    h.fail();
    let (res, _) = producer.join().unwrap();
    assert!(res.is_err(), "push into a failed holder must error");
    assert!(
        failed_at.elapsed() < Duration::from_millis(100),
        "fail() must wake a blocked producer promptly, took {:?}",
        failed_at.elapsed()
    );

    // Consumer side: a blocked pull drains to EOF just as promptly.
    let drained = h.pull_batch(usize::MAX).unwrap();
    assert!(drained.eof);
}

/// The dispatch-cost satellite: a predeployed invocation pays one
/// activation message, not `task_dispatch_cost` serially per task, so
/// with 4 tasks and a visible dispatch cost the pooled invoke must run
/// at least twice as fast as spawn-per-run on the same spec.
#[test]
fn pooled_invoke_skips_per_task_dispatch_cost() {
    let mut config = ClusterConfig::with_nodes(2);
    config.task_dispatch_cost = Duration::from_millis(10);
    let cluster = Cluster::new(config);
    let spec =
        emit_collect_spec(Arc::new(Mutex::new(Vec::new())), Arc::new(Mutex::new(Vec::new())));
    let id = cluster.deploy_job(spec); // pays 2 x 10ms distribution, once

    // Warm both paths once so neither measurement sees first-run costs.
    cluster.invoke_deployed(id, Value::Int(0)).unwrap().join().unwrap();
    let spawn_spec =
        emit_collect_spec(Arc::new(Mutex::new(Vec::new())), Arc::new(Mutex::new(Vec::new())));
    run_job(&cluster, &spawn_spec, Value::Int(0)).unwrap().join().unwrap();

    let t = Instant::now();
    cluster.invoke_deployed(id, Value::Int(1)).unwrap().join().unwrap();
    let pooled = t.elapsed();

    let t = Instant::now();
    run_job(&cluster, &spawn_spec, Value::Int(1)).unwrap().join().unwrap();
    let spawned = t.elapsed();

    // Spawn-per-run pays 4 x 10ms serial dispatch; the pool pays one
    // 10ms activation. Generous 2x bound to stay timing-robust.
    assert!(
        pooled < spawned / 2,
        "pooled invoke ({pooled:?}) should be at least 2x cheaper than spawn-per-run ({spawned:?})"
    );
}

//! Workspace-level integration tests: every crate working together —
//! workload generators → feeds → enrichment → storage → analytics.

use std::sync::Arc;

use idea::adm::Value;
use idea::ingestion::{ComputingModel, FeedSpec, IngestionEngine, PipelineMode, VecAdapter};
use idea::query::SessionConfig;
use idea::workload::scenarios::{setup_scenario, setup_tweet_datasets};
use idea::workload::{ScenarioKey, TweetGenerator, WorkloadScale};

fn engine_with(key: ScenarioKey, nodes: usize) -> (Arc<IngestionEngine>, String) {
    let engine = IngestionEngine::with_nodes(nodes);
    setup_tweet_datasets(engine.catalog()).unwrap();
    let sc = setup_scenario(engine.catalog(), key, &WorkloadScale::tiny(), 7).unwrap();
    (engine, sc.function)
}

fn feed_tweets(
    engine: &IngestionEngine,
    function: &str,
    n: u64,
    batch: usize,
) -> idea::ingestion::IngestionReport {
    let tweets = TweetGenerator::new(5).batch(0, n);
    let spec = FeedSpec::new("it", "Tweets", VecAdapter::factory(tweets))
        .with_function(function)
        .with_batch_size(batch)
        .balanced(engine.cluster().node_count());
    engine.start_feed(spec).unwrap().wait().unwrap()
}

#[test]
fn every_scenario_feeds_end_to_end() {
    for key in [
        ScenarioKey::SafetyRating,
        ScenarioKey::ReligiousPopulation,
        ScenarioKey::LargestReligions,
        ScenarioKey::FuzzySuspects,
        ScenarioKey::NearbyMonuments,
        ScenarioKey::SuspiciousNames,
        ScenarioKey::TweetContext,
        ScenarioKey::WorrisomeTweets,
    ] {
        let (engine, function) = engine_with(key, 3);
        let report = feed_tweets(&engine, &function, 120, 20);
        assert_eq!(report.records_stored, 120, "{key:?}");
        assert_eq!(report.parse_errors, 0, "{key:?}");
        assert!(report.computing_jobs >= 2, "{key:?}: {} jobs", report.computing_jobs);
        let stored = engine.catalog().dataset("Tweets").unwrap().len();
        assert_eq!(stored, 120, "{key:?}");
    }
}

#[test]
fn enriched_data_supports_analytics_without_re_enrichment() {
    let (engine, function) = engine_with(ScenarioKey::SafetyRating, 2);
    feed_tweets(&engine, &function, 200, 32);
    // Option 2 of §4: the enrichment is persisted, so analytical queries
    // read it directly.
    let v = engine
        .new_session(SessionConfig::new())
        .query(
            "SELECT r AS rating, count(*) AS n
         FROM Tweets t LET r = t.safety_rating[0]
         GROUP BY t.safety_rating[0] AS r
         ORDER BY r",
        )
        .unwrap();
    let rows = v.as_array().unwrap();
    let total: i64 = rows
        .iter()
        .map(|r| r.as_object().unwrap().get("n").unwrap().as_int().unwrap())
        .sum();
    assert_eq!(total, 200);
    assert!(rows.len() >= 2, "several distinct ratings: {rows:?}");
}

#[test]
fn per_record_and_per_batch_agree_on_static_reference_data() {
    // With no reference updates, all three computing models must produce
    // identical enrichment (they only differ in state lifetime).
    let mut outputs = Vec::new();
    for model in [ComputingModel::PerRecord, ComputingModel::PerBatch, ComputingModel::Stream] {
        let (engine, function) = engine_with(ScenarioKey::SafetyCheck, 2);
        let tweets = TweetGenerator::new(5).batch(0, 80);
        let spec = FeedSpec::new("m", "Tweets", VecAdapter::factory(tweets))
            .with_function(&function)
            .with_batch_size(16)
            .with_model(model);
        engine.start_feed(spec).unwrap().wait().unwrap();
        let mut reds: Vec<i64> = engine
            .new_session(SessionConfig::new())
            .query(r#"SELECT VALUE t.id FROM Tweets t WHERE t.safety_check_flag = "Red""#)
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        reds.sort_unstable();
        outputs.push(reds);
    }
    assert_eq!(outputs[0], outputs[1], "per-record vs per-batch");
    assert_eq!(outputs[1], outputs[2], "per-batch vs stream");
}

#[test]
fn predeploy_ablation_same_results_fewer_compilations() {
    let run = |predeploy: bool| {
        let (engine, function) = engine_with(ScenarioKey::SafetyRating, 2);
        let tweets = TweetGenerator::new(5).batch(0, 100);
        let spec = FeedSpec::new("p", "Tweets", VecAdapter::factory(tweets))
            .with_function(&function)
            .with_batch_size(10)
            .with_predeploy(predeploy);
        let report = engine.start_feed(spec).unwrap().wait().unwrap();
        let invocations = engine.cluster().deployed_jobs().invocation_count();
        (report.records_stored, report.computing_jobs, invocations)
    };
    let (stored_p, jobs_p, invocations_p) = run(true);
    let (stored_n, _jobs_n, invocations_n) = run(false);
    assert_eq!(stored_p, 100);
    assert_eq!(stored_n, 100);
    assert!(invocations_p >= jobs_p, "predeployed path uses invocation messages");
    assert_eq!(invocations_n, 0, "no-predeploy path recompiles instead of invoking");
}

#[test]
fn static_and_decoupled_store_identical_enrichment() {
    let run = |mode: PipelineMode| -> Vec<(i64, String)> {
        let (engine, function) = engine_with(ScenarioKey::SafetyRating, 2);
        let tweets = TweetGenerator::new(5).batch(0, 60);
        let spec = FeedSpec::new("s", "Tweets", VecAdapter::factory(tweets))
            .with_function(&function)
            .with_batch_size(16)
            .with_mode(mode);
        engine.start_feed(spec).unwrap().wait().unwrap();
        let mut rows: Vec<(i64, String)> = engine
            .new_session(SessionConfig::new())
            .query("SELECT VALUE [t.id, t.safety_rating[0]] FROM Tweets t")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|pair| {
                let p = pair.as_array().unwrap();
                (p[0].as_int().unwrap(), p[1].as_str().unwrap_or("?").to_owned())
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(run(PipelineMode::Static), run(PipelineMode::Decoupled));
}

#[test]
fn facade_reexports_are_usable() {
    // The `idea` facade exposes each layer.
    let v = idea::adm::json::parse(b"{\"x\": 1}").unwrap();
    assert_eq!(v.as_object().unwrap().get("x"), Some(&Value::Int(1)));
    let cluster = idea::hyracks::Cluster::with_nodes(2);
    assert_eq!(cluster.node_count(), 2);
    let sim = idea::clustersim::simulate(
        &idea::clustersim::CostModel::nominal(),
        &idea::clustersim::SimConfig::basic(4, true, 420, 10_000),
    );
    assert!(sim.throughput > 0.0);
    let dt = idea::adm::Datatype::new("T").field("id", idea::adm::TypeTag::Int64);
    let ds = idea::storage::Dataset::new("D", dt, "id", Default::default());
    ds.insert(Value::object([("id", Value::Int(1))])).unwrap();
    assert_eq!(ds.len(), 1);
}

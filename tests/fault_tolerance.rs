//! Fault-tolerance integration tests: deterministic fault injection,
//! supervised feeds, dead-letter capture, and checkpointed restart.
//!
//! The chaos test at the bottom exercises the ISSUE acceptance
//! scenario: a 6-node feed surviving an adapter disconnect, poison
//! records, a UDF failure and a node kill, with
//! `stored = generated - dead-lettered` at the end.

use std::sync::Arc;

use idea::adm::Value;
use idea::prelude::*;

fn setup(nodes: usize) -> Arc<IngestionEngine> {
    let engine = IngestionEngine::with_nodes(nodes);
    engine
        .new_session(SessionConfig::new())
        .run_script(
            r#"
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
        "#,
        )
        .unwrap();
    engine
}

fn tweet(i: usize) -> String {
    format!(r#"{{"id": {i}, "text": "t{i}"}}"#)
}

/// An identity enrichment UDF (so the computing job has an enrich
/// stage for the injector to target).
fn register_identity(engine: &IngestionEngine, name: &str) {
    engine
        .catalog()
        .register_native_function(
            name,
            1,
            Arc::new(|| {
                Box::new(|args: &[Value]| Ok(Value::Array(vec![args[0].clone()])))
                    as Box<dyn idea::query::NativeUdf>
            }),
        )
        .unwrap();
}

/// Round-robin record split per intake partition, rate-limited so the
/// feed spans many computing batches.
fn slow_factory(records: Vec<String>, per_second: f64) -> AdapterFactory {
    let records = Arc::new(records);
    Arc::new(move |p, n| {
        let mine: Vec<String> = records.iter().skip(p).step_by(n).cloned().collect();
        Ok(Box::new(RateLimitedAdapter::new(Box::new(VecAdapter::new(mine)), per_second))
            as Box<dyn Adapter>)
    })
}

#[test]
fn poison_records_land_in_queryable_dead_letter_dataset() {
    let engine = setup(1);
    let records: Vec<String> = (0..100).map(tweet).collect();
    let plan = FaultPlan::seeded(11).poison_record(0, 10).poison_record(0, 20);
    let sup = SupervisionSpec { parse: ErrorPolicy::SkipToDeadLetter, ..Default::default() };
    let spec = FeedSpec::new("pf", "Tweets", VecAdapter::factory(records))
        .with_batch_size(16)
        .with_supervision(sup)
        .with_fault_plan(plan);
    let report = engine.start_feed(spec).unwrap().wait().unwrap();

    assert_eq!(report.dead_letters, 2);
    assert_eq!(report.parse_errors, 2);
    assert_eq!(report.records_stored, 98);
    assert_eq!(engine.catalog().dataset("Tweets").unwrap().len(), 98);
    // The dead letters are real catalog data, queryable with SQL++.
    let dlq = engine.catalog().dataset("pf_dead_letters").unwrap();
    assert_eq!(dlq.len(), 2);
    let v = engine
        .new_session(SessionConfig::new())
        .query("SELECT VALUE d.stage FROM pf_dead_letters d")
        .unwrap();
    let stages = v.as_array().unwrap();
    assert_eq!(stages.len(), 2);
    assert!(stages.iter().all(|s| s.as_str() == Some("parse")), "{stages:?}");
}

#[test]
fn udf_retry_then_succeed_preserves_totals() {
    let engine = setup(2);
    register_identity(&engine, "ident");
    // One injected UDF failure per node; the injector fires each fault
    // once, so the first retry succeeds and no record is lost.
    let plan = FaultPlan::seeded(3).udf_error(0, 3).udf_error(1, 4);
    let sup = SupervisionSpec {
        enrich: ErrorPolicy::retry(
            RetryPolicy::new(2, std::time::Duration::from_millis(1)),
            Fallback::DeadLetter,
        ),
        ..Default::default()
    };
    let records: Vec<String> = (0..80).map(tweet).collect();
    let spec = FeedSpec::new("rf", "Tweets", VecAdapter::factory(records))
        .with_function("ident")
        .with_batch_size(10)
        .with_supervision(sup)
        .with_fault_plan(plan);
    let report = engine.start_feed(spec).unwrap().wait().unwrap();

    assert_eq!(report.records_stored, 80, "retries recover every record");
    assert_eq!(report.enrich_errors, 0);
    assert_eq!(report.dead_letters, 0);
    assert!(report.retries >= 2, "one retry per injected fault: {}", report.retries);
    assert_eq!(engine.catalog().dataset("Tweets").unwrap().len(), 80);
}

#[test]
fn kill_node_mid_feed_stores_every_record_exactly_once() {
    let engine = setup(4);
    let records: Vec<String> = (0..400).map(tweet).collect();
    let plan = FaultPlan::seeded(5).kill_node(2, 2);
    let mut sup = SupervisionSpec { checkpoint_interval: Some(1), ..Default::default() };
    sup.restart.max_restarts = 2;
    let spec = FeedSpec::new("kf", "Tweets", slow_factory(records, 400.0))
        .with_batch_size(25)
        .with_intake_nodes(vec![0, 1])
        .with_supervision(sup)
        .with_fault_plan(plan);
    let report = engine.start_feed(spec).unwrap().wait().unwrap();

    // At-least-once replay + primary-key upsert = exactly-once storage.
    assert_eq!(engine.catalog().dataset("Tweets").unwrap().len(), 400);
    assert!(report.restarts >= 1, "the kill forces a restart: {}", report.restarts);
    assert!(report.checkpoints >= 1, "checkpoints committed: {}", report.checkpoints);
    assert_eq!(engine.cluster().dead_nodes().len(), 0, "killed node restored on restart");
}

#[test]
fn socket_bind_failure_surfaces_through_wait() {
    let engine = setup(1);
    // Occupy a port, then point a socket feed at it: the bind error
    // must come back as a feed error, not a panic.
    let busy = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = busy.local_addr().unwrap();
    engine
        .run_sqlpp(&format!(
            r#"
            CREATE FEED bindfail WITH {{ "sockets": "{addr}" }};
            CONNECT FEED bindfail TO DATASET Tweets;
            START FEED bindfail;
            "#
        ))
        .unwrap();
    let err = engine.stop_feed("bindfail").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("cannot bind"), "bind failure surfaces in wait(): {msg}");
}

/// The acceptance scenario: a 6-node feed with three intake partitions
/// riding out one adapter disconnect, two poison records, one injected
/// UDF failure and one node kill — all scheduled deterministically
/// from one seed.
#[test]
fn chaos_six_node_feed_survives_scripted_faults() {
    let engine = setup(6);
    register_identity(&engine, "chaos_ident");
    let generated = 600usize;
    let records: Vec<String> = (0..generated).map(tweet).collect();

    let plan = FaultPlan::seeded(42)
        .poison_record(1, 3)
        .poison_record(2, 4)
        .adapter_disconnect(0, 20)
        .udf_error(3, 5)
        .kill_node(4, 3);
    let (disconnects, poisons, udf_faults, _slow, kills) = plan.counts();

    let mut sup = SupervisionSpec {
        parse: ErrorPolicy::SkipToDeadLetter,
        adapter: ErrorPolicy::retry(
            RetryPolicy::new(2, std::time::Duration::from_millis(1)),
            Fallback::Abort,
        ),
        enrich: ErrorPolicy::retry(
            RetryPolicy::new(2, std::time::Duration::from_millis(1)),
            Fallback::DeadLetter,
        ),
        checkpoint_interval: Some(1),
        ..Default::default()
    };
    sup.restart.max_restarts = 3;

    let spec = FeedSpec::new("chaos", "Tweets", slow_factory(records, 300.0))
        .with_function("chaos_ident")
        .with_batch_size(30)
        .with_intake_nodes(vec![0, 1, 2])
        .with_supervision(sup)
        .with_fault_plan(plan);
    let report = engine.start_feed(spec).unwrap().wait().unwrap();

    // Every generated record is either stored or dead-lettered.
    let dlq = engine.catalog().dataset("chaos_dead_letters").unwrap().len();
    let stored = engine.catalog().dataset("Tweets").unwrap().len();
    assert_eq!(dlq as u64, poisons, "both poison records captured");
    assert_eq!(stored + dlq, generated, "stored = generated - dead-lettered");
    assert_eq!(report.dead_letters, poisons);
    assert!(report.restarts >= 1, "node kill forces a restart: {}", report.restarts);
    assert!(report.checkpoints >= 1, "restart resumed from a checkpoint");
    assert!(report.retries >= 2, "adapter + UDF retries: {}", report.retries);
    assert_eq!(engine.cluster().dead_nodes().len(), 0);

    // The injection counters under feed/chaos/faults/injected/* match
    // the plan: every scheduled fault fired exactly once.
    let snap = engine.metrics().snapshot();
    let injected = |k: &str| snap.counter(&format!("feed/chaos/faults/injected/{k}"));
    assert_eq!(injected("adapter_disconnects"), Some(disconnects));
    assert_eq!(injected("poison_records"), Some(poisons));
    assert_eq!(injected("udf_faults"), Some(udf_faults));
    assert_eq!(injected("node_kills"), Some(kills));

    // Dead letters carry the feed/stage metadata for SQL++ triage.
    let v = engine
        .new_session(SessionConfig::new())
        .query(r#"SELECT VALUE d.feed FROM chaos_dead_letters d WHERE d.stage = "parse""#)
        .unwrap();
    assert_eq!(v.as_array().unwrap().len(), poisons as usize);

    // Engine shutdown deterministically drains the background flush/
    // merge pool even after a chaos run: no queued task survives, every
    // submitted task ran, all worker threads are joined.
    engine.shutdown();
    let maint = engine.maintenance();
    assert!(maint.is_shut_down());
    assert_eq!(maint.queue_depth(), 0, "no maintenance task leaked past shutdown");
    assert_eq!(maint.completed(), maint.submitted(), "every maintenance task drained");
    assert_eq!(maint.running(), 0);
    // Storage stays fully usable (maintenance degrades to inline).
    let stored_after = engine.catalog().dataset("Tweets").unwrap().len();
    assert_eq!(stored_after, stored, "shutdown lost records");
}

#[test]
fn same_seed_gives_identical_fault_outcomes() {
    let run = || {
        let engine = setup(2);
        let records: Vec<String> = (0..120).map(tweet).collect();
        let plan = FaultPlan::seeded(99).poison_record(0, 7).poison_record(1, 9);
        let sup = SupervisionSpec { parse: ErrorPolicy::SkipToDeadLetter, ..Default::default() };
        let spec = FeedSpec::new("det", "Tweets", VecAdapter::factory(records))
            .with_batch_size(20)
            .with_intake_nodes(vec![0, 1])
            .with_supervision(sup)
            .with_fault_plan(plan);
        let report = engine.start_feed(spec).unwrap().wait().unwrap();
        let mut ids: Vec<String> = engine
            .catalog()
            .dataset("det_dead_letters")
            .unwrap()
            .snapshot_all()
            .iter()
            .flat_map(|snap| snap.iter().map(|v| v.to_string()).collect::<Vec<_>>())
            .collect();
        ids.sort();
        (report.records_stored, report.dead_letters, ids)
    };
    assert_eq!(run(), run(), "same seed, same schedule, same outcome");
}

//! Kill-9 crash-recovery integration tests.
//!
//! The main test re-executes this test binary as a child process
//! (`crash_child`, `#[ignore]`d so it only runs when asked for by
//! name). The child ingests and enriches records through a real feed
//! into a durable dataset, printing progress; the parent SIGKILLs it
//! mid-feed, reopens the storage root, and checks the recovered data
//! against a differential oracle:
//!
//! * **every committed record recovered** — for each intake partition,
//!   all records below the last *committed* checkpoint offset must be
//!   present (checkpoints commit only after the storage stage acked,
//!   and puts return only after their WAL record reached the OS file —
//!   which survives SIGKILL in the page cache even with fsync off);
//! * **zero wrong rows** — every recovered record must match the
//!   id-derived formula exactly; recovery may deliver a little more
//!   than the committed horizon (at-least-once), never garbage.
//!
//! A separate test corrupts the WAL tail directly and asserts a torn
//! final record is truncated, not fatal.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use idea::adm::Value;
use idea::ft::CheckpointStore;
use idea::prelude::*;
use idea::query::Catalog;
use idea::storage::dataset::{Dataset, DatasetConfig};
use idea::storage::TempDir;

const TOTAL: usize = 200_000;
const KILL_AFTER: usize = 3_000;
const FEED: &str = "cr";
const INTAKES: usize = 2;

fn sig_for(id: i64) -> i64 {
    id * 7 + 3
}

fn durable_options() -> &'static str {
    // fsync off: kill-9 only takes the process, not the kernel page
    // cache, so group-commit "durability" still holds for this test
    // and the child ingests at full speed. The small memtable budget
    // forces real flushes (component files + manifest updates) mid-run.
    r#"{"storage": "disk", "fsync": "never", "memtable-budget-bytes": "262144"}"#
}

fn register_enrich(engine: &IngestionEngine) {
    engine
        .catalog()
        .register_native_function(
            "enrich",
            1,
            std::sync::Arc::new(|| {
                Box::new(|args: &[Value]| {
                    let obj = args[0].as_object().expect("record");
                    let id = match obj.get("id") {
                        Some(Value::Int(i)) => *i,
                        other => panic!("bad id {other:?}"),
                    };
                    let text = obj.get("text").cloned().unwrap_or(Value::Missing);
                    Ok(Value::Array(vec![Value::object([
                        ("id", Value::Int(id)),
                        ("text", text),
                        ("sig", Value::Int(sig_for(id))),
                    ])]))
                }) as Box<dyn idea::query::NativeUdf>
            }),
        )
        .unwrap();
}

/// The child role: ingest + enrich into a durable dataset until killed.
/// Only meaningful when re-executed by `kill_nine_mid_feed_recovers` —
/// hence `#[ignore]` and the env-var gate.
#[test]
#[ignore = "child process role for kill_nine_mid_feed_recovers"]
fn crash_child() {
    let Ok(dir) = std::env::var("IDEA_CRASH_DIR") else {
        eprintln!("IDEA_CRASH_DIR not set; nothing to do");
        return;
    };
    let engine = IngestionEngine::with_storage_root(INTAKES, &dir).unwrap();
    engine
        .new_session(SessionConfig::new())
        .run_script(&format!(
            r#"
            CREATE TYPE EventType AS OPEN {{ id: int64, text: string }};
            CREATE DATASET Events(EventType) PRIMARY KEY id WITH {};
            "#,
            durable_options()
        ))
        .unwrap();
    register_enrich(&engine);

    let records: Vec<String> =
        (0..TOTAL).map(|i| format!(r#"{{"id": {i}, "text": "t{i}"}}"#)).collect();
    let mut spec = FeedSpec::new(FEED, "Events", VecAdapter::factory(records))
        .with_function("enrich")
        .with_batch_size(64)
        .with_intake_nodes((0..INTAKES).collect());
    spec.supervision.checkpoint_interval = Some(8);
    engine.start_feed(spec).unwrap();

    let ds = engine.catalog().dataset("Events").unwrap();
    loop {
        println!("progress {}", ds.len());
        std::io::stdout().flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn kill_nine_mid_feed_recovers_every_committed_record() {
    let tmp = TempDir::new("crash-recovery");
    let mut child = Command::new(std::env::current_exe().unwrap())
        .args(["crash_child", "--ignored", "--exact", "--nocapture"])
        .env("IDEA_CRASH_DIR", tmp.path())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn child");

    // Watch the child's progress from a thread so the parent can
    // enforce a deadline; SIGKILL once enough records are in.
    let stdout = child.stdout.take().unwrap();
    let (tx, rx) = mpsc::channel::<usize>();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { return };
            if let Some(n) = line.strip_prefix("progress ") {
                if let Ok(n) = n.trim().parse::<usize>() {
                    if tx.send(n).is_err() {
                        return;
                    }
                }
            }
        }
    });
    // Kill only once (a) enough records are in and (b) at least one
    // checkpoint has committed — its file appears atomically on the
    // first commit — so the committed-horizon oracle below has teeth.
    let ckpt_path = tmp.path().join("checkpoints").join(format!("{FEED}.ckpt"));
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut last_seen = 0usize;
    while last_seen < KILL_AFTER || !ckpt_path.exists() {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(n) => last_seen = n,
            Err(_) if Instant::now() > deadline => {
                let _ = child.kill();
                panic!(
                    "child never reached {KILL_AFTER} records + a committed checkpoint \
                     (last {last_seen}, ckpt exists: {})",
                    ckpt_path.exists()
                );
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let _ = child.kill();
                panic!("child exited early (last progress {last_seen})");
            }
            Err(_) => {}
        }
    }
    child.kill().expect("SIGKILL child"); // std's kill is SIGKILL on unix
    child.wait().expect("reap child");

    // Reopen the storage root from scratch: the catalog must recover
    // the dataset (and its datatype) from disk alone.
    let catalog = Catalog::new(INTAKES);
    assert_eq!(catalog.set_storage_root(tmp.path()).unwrap(), 1, "one durable dataset");
    let ds = catalog.dataset("Events").unwrap();
    let recovered = ds.len();
    assert!(recovered > 0, "nothing recovered");
    assert!(
        ds.partitions().iter().any(|p| {
            p.recovery_stats()
                .is_some_and(|r| r.replayed_records > 0 || r.components_loaded > 0)
        }),
        "recovery did not replay a WAL or load a component"
    );

    // Zero wrong rows: every recovered record matches the id-derived
    // formula produced by the enrichment UDF.
    let mut seen = 0usize;
    for snap in ds.snapshot_all() {
        for rec in snap.iter() {
            let obj = rec.as_object().expect("recovered row is an object");
            let id = match obj.get("id") {
                Some(Value::Int(i)) => *i,
                other => panic!("bad recovered id {other:?}"),
            };
            assert!((0..TOTAL as i64).contains(&id), "id {id} out of range");
            assert_eq!(obj.get("sig"), Some(&Value::Int(sig_for(id))), "wrong sig for id {id}");
            assert_eq!(
                obj.get("text"),
                Some(&Value::str(format!("t{id}"))),
                "wrong text for id {id}"
            );
            seen += 1;
        }
    }
    assert_eq!(seen, recovered);

    // Every committed record recovered: the persisted checkpoint's
    // committed offsets are a durable promise — record k of intake
    // partition p is global id `k * INTAKES + p` (VecAdapter::factory
    // splits round-robin).
    let ckpt = CheckpointStore::persistent(
        INTAKES,
        tmp.path().join("checkpoints").join(format!("{FEED}.ckpt")),
    );
    let committed = ckpt.committed_snapshot();
    let committed_total: u64 = committed.iter().sum();
    assert!(committed_total > 0, "no checkpoint committed before the kill");
    for (p, &upto) in committed.iter().enumerate() {
        for k in 0..upto {
            let id = (k as usize * INTAKES + p) as i64;
            let rec = ds.get(&Value::Int(id)).unwrap().unwrap_or_else(|| {
                panic!("committed record id {id} (intake {p}, offset {k}/{upto}) lost")
            });
            assert_eq!(rec.as_object().unwrap().get("sig"), Some(&Value::Int(sig_for(id))));
        }
    }
    assert!(
        recovered as u64 >= committed_total,
        "recovered {recovered} rows < committed {committed_total}"
    );
    println!(
        "kill-9 at ~{last_seen} ingested: recovered {recovered} rows, \
         committed horizon {committed_total} verified"
    );
}

#[test]
fn torn_wal_tail_is_truncated_not_fatal() {
    let tmp = TempDir::new("torn-tail");
    let mut config = DatasetConfig::default();
    config.apply_options(&[("fsync".to_owned(), "never".to_owned())]).unwrap();
    let dt = idea::adm::Datatype::new("T");
    {
        let ds = Dataset::open_durable("t", dt.clone(), "id", config.clone(), tmp.path()).unwrap();
        for i in 0..100 {
            ds.insert(Value::object([("id", Value::Int(i)), ("v", Value::Int(i * i))]))
                .unwrap();
        }
    }

    // Corrupt the newest WAL segment with a torn record: a frame header
    // promising 4096 bytes followed by only 5 (as if the crash landed
    // mid-write). Recovery must truncate it, not refuse to open.
    let mut wals: Vec<_> = std::fs::read_dir(tmp.path())
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.file_name().unwrap().to_string_lossy().starts_with("wal-"))
        .collect();
    wals.sort();
    let tail = wals.last().expect("a WAL segment exists").clone();
    let mut f = std::fs::OpenOptions::new().append(true).open(&tail).unwrap();
    f.write_all(&4096u32.to_le_bytes()).unwrap();
    f.write_all(&0u32.to_le_bytes()).unwrap();
    f.write_all(b"torn!").unwrap();
    drop(f);

    let ds = Dataset::open_durable("t", dt.clone(), "id", config.clone(), tmp.path()).unwrap();
    assert_eq!(ds.len(), 100, "torn tail must not lose committed records");
    for i in 0..100 {
        let rec = ds.get(&Value::Int(i)).unwrap().unwrap();
        assert_eq!(rec.as_object().unwrap().get("v"), Some(&Value::Int(i * i)));
    }
    let stats = ds.recovery_stats().unwrap();
    assert!(stats.truncated_bytes > 0, "recovery should report the truncated tail");
    drop(ds);

    // The truncation is physical: a third open sees a clean log.
    let ds = Dataset::open_durable("t", dt, "id", config, tmp.path()).unwrap();
    assert_eq!(ds.len(), 100);
    assert_eq!(ds.recovery_stats().unwrap().truncated_bytes, 0);
}

//! The observability layer, end to end: after a real feed run the
//! registry snapshot must agree with the `IngestionReport`, expose the
//! holder/storage/hyracks instruments, and render as an ADM value that
//! survives the JSON round trip.

use std::sync::Arc;
use std::time::Duration;

use idea::prelude::*;
use idea::workload::scenarios::{setup_scenario, setup_tweet_datasets};
use idea::workload::{ScenarioKey, TweetGenerator, WorkloadScale};

fn run_feed(nodes: usize, n: u64, batch: usize) -> (Arc<IngestionEngine>, IngestionReport) {
    let engine = IngestionEngine::with_nodes(nodes);
    setup_tweet_datasets(engine.catalog()).unwrap();
    let sc = setup_scenario(engine.catalog(), ScenarioKey::SafetyCheck, &WorkloadScale::tiny(), 7)
        .unwrap();
    let tweets = TweetGenerator::new(5).batch(0, n);
    let spec = FeedSpec::new("obs", "Tweets", VecAdapter::factory(tweets))
        .with_function(&sc.function)
        .with_batch_size(batch);
    let report = engine.start_feed(spec).unwrap().wait().unwrap();
    (engine, report)
}

#[test]
fn snapshot_agrees_with_ingestion_report() {
    let (engine, report) = run_feed(2, 150, 25);
    let snap = engine.metrics().snapshot();

    // The report is a view over the same instruments, so the snapshot
    // must reproduce it exactly.
    assert_eq!(snap.counter("feed/obs/intake/records"), Some(report.records_ingested));
    assert_eq!(snap.counter("feed/obs/parse/errors"), Some(report.parse_errors));
    assert_eq!(snap.counter("feed/obs/enrich/errors"), Some(report.enrich_errors));
    assert_eq!(snap.counter("feed/obs/enrich/records"), Some(report.records_enriched));
    assert_eq!(snap.counter("feed/obs/store/records"), Some(report.records_stored));
    assert_eq!(snap.counter("feed/obs/computing/jobs"), Some(report.computing_jobs));

    // Pipeline accounting: everything ingested is either enriched or
    // dropped, and everything enriched is stored.
    assert_eq!(
        report.records_ingested,
        report.records_enriched + report.enrich_errors + report.parse_errors
    );
    assert_eq!(report.records_stored, report.records_enriched);
    assert_eq!(report.records_stored, 150);

    // One histogram sample per computing-job invocation.
    let h = snap.histogram("feed/obs/batch_latency").expect("batch-latency histogram");
    assert_eq!(h.count, report.computing_jobs);
    assert!(h.max() >= h.p50(), "percentiles are ordered");

    // Hyracks instruments: intake + storage jobs plus one computing job
    // per batch, all tasks finished.
    let jobs = snap.counter("hyracks/jobs_started").expect("jobs counter");
    assert!(jobs >= 2 + report.computing_jobs, "{jobs} jobs");
    assert_eq!(snap.gauge("hyracks/tasks_active"), Some(0), "all tasks exited");
}

#[test]
fn holder_and_storage_instruments_appear() {
    let (engine, _) = run_feed(2, 100, 20);
    let snap = engine.metrics().snapshot();

    // Per-node holder gauges exist and read 0 after the drain.
    for node in 0..2 {
        for side in ["intake", "storage"] {
            let name = format!("feed/obs/holder/{side}/node{node}/queue_depth");
            assert_eq!(snap.gauge(&name), Some(0), "{name}");
        }
    }

    // Storage probes: flush twice with fresh data in between (an empty
    // memtable makes flush a no-op) so each partition gains two
    // components, then merge them back into one.
    let gen = TweetGenerator::new(9);
    let ds = engine.catalog().dataset("Tweets").unwrap();
    for (i, p) in ds.partitions().iter().enumerate() {
        for k in 0..2 {
            let id = 1_000_000 + (2 * i + k) as u64;
            let tweet = idea::adm::json::parse(gen.generate(id).as_bytes()).unwrap();
            p.upsert(tweet).unwrap();
            p.flush();
        }
        p.merge();
    }
    let snap = engine.metrics().snapshot();
    assert!(snap.gauge("storage/Tweets/flushes").unwrap() >= 2 * 2, "two flushes per node");
    assert!(snap.gauge("storage/Tweets/merges").unwrap() >= 2, "one merge per node");
    assert!(snap.gauge("storage/Tweets/components").is_some());
}

#[test]
fn snapshot_renders_as_table_and_round_trips_as_adm() {
    let (engine, _) = run_feed(1, 60, 15);
    let snap = engine.metrics().snapshot();

    let table = snap.to_table();
    assert!(table.contains("feed/obs/intake/records"), "table:\n{table}");
    assert!(table.contains("hyracks/jobs_started"), "table:\n{table}");

    let adm = snap.to_adm();
    let feed = adm.as_object().unwrap().get("feed").unwrap();
    let obs = feed.as_object().unwrap().get("obs").unwrap().as_object().unwrap();
    assert!(obs.get("intake").is_some());
    let text = idea::adm::json::to_string(&adm);
    let back = idea::adm::json::parse(text.as_bytes()).unwrap();
    assert_eq!(back, adm, "snapshot must survive the ADM JSON round trip");
}

#[test]
fn restarted_feed_gets_fresh_counters() {
    let engine = IngestionEngine::with_nodes(1);
    setup_tweet_datasets(engine.catalog()).unwrap();
    let sc = setup_scenario(engine.catalog(), ScenarioKey::SafetyCheck, &WorkloadScale::tiny(), 7)
        .unwrap();
    for _ in 0..2 {
        let tweets = TweetGenerator::new(5).batch(0, 40);
        let spec = FeedSpec::new("again", "Tweets", VecAdapter::factory(tweets))
            .with_function(&sc.function)
            .with_batch_size(10);
        engine.start_feed(spec).unwrap().wait().unwrap();
        engine.afm().remove("again");
        // Not cumulative: each run re-registers its scope from zero.
        let snap = engine.metrics().snapshot();
        assert_eq!(snap.counter("feed/again/intake/records"), Some(40));
    }
}

#[test]
fn queue_depth_gauge_tracks_stalled_consumer() {
    use idea::hyracks::{Frame, HolderMode, PartitionHolderManager};

    let registry = MetricsRegistry::new();
    let manager = PartitionHolderManager::new();
    let holder = manager.register("q", HolderMode::Passive, 8).unwrap();
    holder.attach_obs(&registry.scope("holder/q"));

    let depth = || registry.snapshot().gauge("holder/q/queue_depth").unwrap();
    assert_eq!(depth(), 0);

    // A stalled consumer: frames pile up and the gauge rises.
    holder.push_frame(Frame::from_records(vec![Value::Int(1)])).unwrap();
    holder.push_frame(Frame::from_records(vec![Value::Int(2)])).unwrap();
    assert_eq!(depth(), 2);

    // Fill the queue; a further push must block and count as blocked.
    for i in 0..6 {
        holder.push_frame(Frame::from_records(vec![Value::Int(i)])).unwrap();
    }
    let h2 = holder.clone();
    let pusher = std::thread::spawn(move || {
        h2.push_frame(Frame::from_records(vec![Value::Int(99)])).unwrap();
    });
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while registry.snapshot().counter("holder/q/blocked_pushes").unwrap() == 0 {
        assert!(std::time::Instant::now() < deadline, "blocked push never observed");
        std::thread::sleep(Duration::from_millis(1));
    }

    // One pull frees a slot, so the blocked producer completes. Drain
    // fully before EOF — push_eof is a stream message and honours the
    // same back-pressure as frames.
    let mut drained = holder.pull_frame().unwrap().unwrap().len();
    pusher.join().unwrap();
    drained += holder.try_pull_all().len();
    holder.push_eof().unwrap();
    assert!(holder.pull_frame().unwrap().is_none(), "EOF after drain");
    assert_eq!(drained, 9, "2 + 6 queued + 1 blocked frame, 1 record each");
    assert_eq!(depth(), 0);
}

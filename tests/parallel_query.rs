//! Differential tests: the parallel partitioned query path vs. the
//! sequential evaluator (its oracle).
//!
//! A randomized workload of SELECT / GROUP BY / JOIN / ORDER BY
//! queries runs through both [`ExecMode`]s on a multi-partition
//! cluster; results must be identical after order normalization
//! (SQL++ result order is unspecified without ORDER BY). A second
//! test kills a node mid-workload: every parallel invocation then
//! falls back to the sequential evaluator and answers stay correct.

use std::sync::Arc;

use idea::adm::Value;
use idea::hyracks::Cluster;
use idea::obs::MetricsRegistry;
use idea::query::{Catalog, ExecMode, Session};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 4;
const COUNTRIES: &[&str] = &["US", "DE", "FR", "JP", "BR", "IN"];

fn setup(seed: u64) -> (Session, Arc<Cluster>, Arc<MetricsRegistry>) {
    let cluster = Cluster::with_nodes(NODES);
    let metrics = MetricsRegistry::new();
    cluster.attach_metrics(metrics.clone());
    let catalog = Catalog::new(NODES);
    let session = Session::with_cluster(catalog, cluster.clone());
    session
        .run_script(
            r#"
            CREATE TYPE TweetType AS OPEN { id: int64, country: string, score: int64, text: string };
            CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
            CREATE TYPE WordType AS OPEN { wid: int64, country: string, word: string };
            CREATE DATASET Words(WordType) PRIMARY KEY wid;
            "#,
        )
        .unwrap();

    let mut rng = StdRng::seed_from_u64(seed);
    let tweets = session.catalog().dataset("Tweets").unwrap();
    for id in 0..600i64 {
        let country = COUNTRIES[rng.random_range(0..COUNTRIES.len())];
        let score = rng.random_range(0..100i64);
        let text = format!("tweet {id} from {country} mentions topic{}", rng.random_range(0..8u32));
        tweets
            .insert(Value::object([
                ("id", Value::Int(id)),
                ("country", Value::str(country)),
                ("score", Value::Int(score)),
                ("text", Value::str(&text)),
            ]))
            .unwrap();
    }
    let words = session.catalog().dataset("Words").unwrap();
    for wid in 0..20i64 {
        let country = COUNTRIES[rng.random_range(0..COUNTRIES.len())];
        words
            .insert(Value::object([
                ("wid", Value::Int(wid)),
                ("country", Value::str(country)),
                ("word", Value::str(format!("topic{}", wid % 8))),
            ]))
            .unwrap();
    }
    (session, cluster, metrics)
}

/// Renders a result array as a sorted list of row strings, so two
/// result sets compare equal regardless of row order.
fn normalized(v: &Value) -> Vec<String> {
    let mut rows: Vec<String> = v
        .as_array()
        .expect("query yields an array")
        .iter()
        .map(|r| format!("{r}"))
        .collect();
    rows.sort();
    rows
}

/// A randomized query workload over the tweet/word schema. Every query
/// either fixes a total order (ORDER BY a unique key) or is compared
/// order-normalized.
fn workload(rng: &mut StdRng, n: usize) -> Vec<String> {
    let mut queries = Vec::with_capacity(n);
    for _ in 0..n {
        let cutoff = rng.random_range(5..95i64);
        let limit = rng.random_range(1..40usize);
        let country = COUNTRIES[rng.random_range(0..COUNTRIES.len())];
        let q = match rng.random_range(0..8u32) {
            // Plain partitioned scan with a pushed-down filter.
            0 => format!("SELECT VALUE t.id FROM Tweets t WHERE t.score < {cutoff}"),
            // ORDER BY the primary key + LIMIT (deterministic order).
            1 => format!(
                "SELECT t.id AS id, t.score AS score FROM Tweets t \
                 WHERE t.score >= {cutoff} ORDER BY t.id LIMIT {limit}"
            ),
            // Hash-partitioned GROUP BY with multiple aggregates.
            2 => format!(
                "SELECT t.country AS c, count(*) AS n, sum(t.score) AS total \
                 FROM Tweets t WHERE t.score < {cutoff} \
                 GROUP BY t.country ORDER BY t.country"
            ),
            // GROUP BY with HAVING and avg.
            3 => format!(
                "SELECT t.country AS c, avg(t.score) AS mean FROM Tweets t \
                 GROUP BY t.country HAVING count(*) > {limit} ORDER BY t.country"
            ),
            // Join against the reference dataset.
            4 => format!(
                "SELECT t.id AS id, w.word AS word FROM Tweets t, Words w \
                 WHERE t.country = w.country AND contains(t.text, w.word) \
                 AND t.score < {cutoff}"
            ),
            // Aggregates without GROUP BY (single implicit group).
            5 => format!(
                "SELECT count(*) AS n, min(t.score) AS lo, max(t.score) AS hi \
                 FROM Tweets t WHERE t.country = \"{country}\""
            ),
            // DISTINCT projection.
            6 => format!("SELECT DISTINCT VALUE t.country FROM Tweets t WHERE t.score < {cutoff}"),
            // Grouped join: flagged tweet counts per word.
            _ => "SELECT w.word AS word, count(*) AS n FROM Tweets t, Words w \
                  WHERE t.country = w.country AND contains(t.text, w.word) \
                  GROUP BY w.word ORDER BY w.word"
                .to_string(),
        };
        queries.push(q);
    }
    queries
}

fn both_modes(session: &Session, q: &str) -> (Vec<String>, Vec<String>) {
    session.set_mode(ExecMode::Sequential);
    let seq = session.query(q).unwrap_or_else(|e| panic!("sequential failed for {q}: {e}"));
    session.set_mode(ExecMode::Parallel);
    let par = session.query(q).unwrap_or_else(|e| panic!("parallel failed for {q}: {e}"));
    (normalized(&seq), normalized(&par))
}

#[test]
fn parallel_matches_sequential_on_randomized_workload() {
    let (session, _cluster, metrics) = setup(42);
    let mut rng = StdRng::seed_from_u64(7);
    for q in workload(&mut rng, 60) {
        let (seq, par) = both_modes(&session, &q);
        assert_eq!(seq, par, "modes disagree on: {q}");
    }
    let snap = metrics.snapshot();
    let invocations = snap.counter("query/parallel/invocations").unwrap_or(0);
    assert!(invocations > 0, "no query actually ran on the parallel path");
}

#[test]
fn repeated_query_reuses_one_deployed_job() {
    let (session, _cluster, metrics) = setup(3);
    session.set_mode(ExecMode::Parallel);
    // One parsed statement, executed many times: the job is deployed
    // once and every invocation goes through the resident task pool.
    let stmts = idea::query::parser::parse_statements(
        "SELECT t.country AS c, count(*) AS n FROM Tweets t GROUP BY t.country",
    )
    .unwrap();
    let mut last = None;
    for _ in 0..5 {
        let v = session.execute(&stmts[0]).unwrap().into_value().unwrap();
        let n = normalized(&v);
        if let Some(prev) = &last {
            assert_eq!(prev, &n);
        }
        last = Some(n);
    }
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("query/parallel/deploys"), Some(1), "expected exactly one deploy");
    assert_eq!(snap.counter("query/parallel/invocations"), Some(5));
}

#[test]
fn node_kill_falls_back_to_sequential_and_stays_correct() {
    let (session, cluster, metrics) = setup(99);
    let mut rng = StdRng::seed_from_u64(13);

    // Warm the parallel path, then kill a node under the pinned scan
    // stages.
    let (seq, par) = both_modes(&session, "SELECT VALUE t.id FROM Tweets t WHERE t.score < 50");
    assert_eq!(seq, par);
    cluster.kill_node(2);

    session.set_mode(ExecMode::Parallel);
    for q in workload(&mut rng, 12) {
        let (s, p) = both_modes(&session, &q);
        assert_eq!(s, p, "modes disagree with node 2 down on: {q}");
    }
    let snap = metrics.snapshot();
    let fallbacks = snap.counter("query/parallel/fallbacks").unwrap_or(0);
    assert!(fallbacks > 0, "expected parallel invocations to fall back while node 2 is down");

    // After restore the parallel path serves again — and still agrees.
    cluster.restore_node(2);
    let before = snap.counter("query/parallel/invocations").unwrap_or(0);
    for q in workload(&mut rng, 8) {
        let (s, p) = both_modes(&session, &q);
        assert_eq!(s, p, "modes disagree after restoring node 2 on: {q}");
    }
    let after = metrics.snapshot().counter("query/parallel/invocations").unwrap_or(0);
    assert!(after > before, "parallel path did not resume after node restore");
}

#[test]
fn ddl_between_executions_redeploys_the_job() {
    let (session, _cluster, metrics) = setup(5);
    session.set_mode(ExecMode::Parallel);
    let stmts = idea::query::parser::parse_statements(
        "SELECT VALUE t.id FROM Tweets t WHERE t.country = \"US\"",
    )
    .unwrap();
    let v1 = session.execute(&stmts[0]).unwrap().into_value().unwrap();
    // DDL moves the catalog version: the cached deployed job is stale
    // (its embedded plan may pick a different access path now).
    session.run_script("CREATE INDEX tc ON Tweets(country) TYPE BTREE;").unwrap();
    let v2 = session.execute(&stmts[0]).unwrap().into_value().unwrap();
    assert_eq!(normalized(&v1), normalized(&v2));
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("query/parallel/deploys"), Some(2), "DDL must force a redeploy");
}

//! Paper-fidelity checks: the DDL and UDFs as *printed in the paper*
//! (Figures 1, 4, 6, 8–14, 18 and appendix Figures 32–40) must parse —
//! modulo the paper's PDF line-wrapping — and the core ones must run.

use idea::query::parser::{parse_query, parse_statements};

#[test]
fn figure_1_tweet_ddl_verbatim() {
    parse_statements(
        r#"CREATE TYPE TweetType AS OPEN {
             id : int64 ,
             text: string
           };
           CREATE DATASET Tweets(TweetType)
           PRIMARY KEY id;"#,
    )
    .unwrap();
}

#[test]
fn figure_3_insert_verbatim() {
    parse_statements(
        r#"INSERT INTO Tweets ([
             {"id":0, "text": "Let there be light"}
           ]);"#,
    )
    .unwrap();
}

#[test]
fn figure_4_socket_feed_verbatim() {
    parse_statements(
        r#"CREATE FEED TweetFeed WITH {
             "type-name" : "TweetType",
             "adapter-name": "socket_adapter",
             "format" : "JSON",
             "sockets": "127.0.0.1:10001",
             "address-type": "IP"
           };
           CONNECT FEED TweetFeed TO DATASET Tweets;
           START FEED TweetFeed;"#,
    )
    .unwrap();
}

#[test]
fn figure_10_batch_insert_verbatim() {
    parse_statements(
        r#"INSERT INTO EnrichedTweets(
             LET TweetsBatch = ([{"id":0}, {"id":1}])
             SELECT VALUE tweetSafetyCheck(tweet)
             FROM TweetsBatch tweet
           );"#,
    )
    .unwrap();
}

#[test]
fn figure_11_anti_join_verbatim() {
    parse_statements(
        r#"INSERT INTO EnrichedTweets(
             SELECT VALUE tweetSafetyCheck(tweet)
             FROM Tweets tweet WHERE tweet.id NOT IN
               (SELECT VALUE enrichedTweet.id
                FROM EnrichedTweets enrichedTweet)
           );"#,
    )
    .unwrap();
}

#[test]
fn figure_32_safety_rating_verbatim() {
    parse_statements(
        r#"CREATE TYPE SafetyRatingType AS open {
             country_code : string ,
             safety_rating: string
           };
           CREATE DATASET SafetyRatings(SafetyRatingType)
           PRIMARY KEY country_code;
           CREATE FUNCTION enrichTweetQ1(t) {
             LET safety_rating = (SELECT VALUE s.safety_rating
                                  FROM SafetyRatings s
                                  WHERE t.country = s.country_code)
             SELECT t.*, safety_rating
           };"#,
    )
    .unwrap();
}

#[test]
fn figure_33_religious_population_verbatim() {
    parse_statements(
        r#"CREATE FUNCTION enrichTweetQ2(t) {
             LET religious_population =
               (SELECT sum(r.population) FROM
                ReligiousPopulations r
                WHERE r.country_name = t.country )[0]
             SELECT t.*, religious_population
           };"#,
    )
    .unwrap();
}

#[test]
fn figure_34_largest_religions_verbatim() {
    parse_statements(
        r#"CREATE FUNCTION enrichTweetQ3(t) {
             LET largest_religions =
               (SELECT VALUE r.religion_name
                FROM ReligiousPopulations r
                WHERE r.country_name = t.country
                ORDER BY r.population LIMIT 3)
             SELECT t.*, largest_religions
           };"#,
    )
    .unwrap();
}

#[test]
fn figure_36_fuzzy_suspects_verbatim() {
    parse_statements(
        r#"CREATE FUNCTION annotateTweetQ4(x) {
             LET related_suspects =(
               SELECT s.sensitiveName , s.religionName
               FROM SensitiveNamesDataset s
               WHERE edit_distance(
                 testlib#removeSpecial(x.user.screen_name),
                 s.sensitiveName) < 5)
             SELECT x.*, related_suspects
           };"#,
    )
    .unwrap();
}

#[test]
fn figure_37_nearby_monuments_verbatim() {
    parse_statements(
        r#"CREATE TYPE monumentType AS open {
             monument_id: string ,
             monument_location: point
           };
           CREATE DATASET monumentList(monumentType)
           PRIMARY KEY monument_id;
           CREATE FUNCTION enrichTweetQ4(t) {
             LET nearby_monuments =
               (SELECT VALUE m.monument_id
                FROM monumentList m
                WHERE spatial_intersect(
                  m.monument_location ,
                  create_circle(
                    create_point(t.latitude , t.longitude),
                    1.5)))
             SELECT t.*, nearby_monuments
           };"#,
    )
    .unwrap();
}

#[test]
fn figure_38_suspicious_names_verbatim() {
    parse_statements(
        r#"CREATE FUNCTION enrichTweetQ5(t) {
             LET nearby_facilities = (
               SELECT f.facility_type FacilityType , count (*) AS Cnt
               FROM Facilities f
               WHERE spatial_intersect(create_point(t.latitude , t.longitude),
                     create_circle(f.facility_location , 3.0))
               GROUP BY f.facility_type),
             nearby_religious_buildings = (
               SELECT r.religious_building_id religious_building_id , r.religion_name religion_name
               FROM ReligiousBuildings r
               WHERE spatial_intersect(create_point(t.latitude , t.longitude),
                     create_circle(r.building_location , 3.0))
               ORDER BY spatial_distance(create_point(t.latitude , t.longitude), r.building_location) LIMIT 3),
             suspicious_users_info = (
               SELECT s.suspicious_name_id suspect_id , s.religion_name AS religion , s.threat_level AS threat_level
               FROM SuspiciousNames s
               WHERE s.suspicious_name = t.user.name)
             SELECT t.*, nearby_facilities , nearby_religious_buildings , suspicious_users_info
           };"#,
    )
    .unwrap();
}

#[test]
fn figure_39_tweet_context_verbatim() {
    parse_statements(
        r#"CREATE FUNCTION enrichTweetQ6(t) {
             LET area_avg_income = (
               SELECT VALUE a.average_income
               FROM AverageIncomes a, DistrictAreas d1
               WHERE a.district_area_id = d1.district_area_id
                 AND spatial_intersect(create_point(t.latitude , t.longitude), d1.district_area )),
             area_facilities = (
               SELECT f.facility_type , count (*) AS Cnt
               FROM Facilities f, DistrictAreas d2
               WHERE spatial_intersect(f.facility_location , d2.district_area)
                 AND spatial_intersect(create_point(t.latitude , t.longitude), d2.district_area)
               GROUP BY f.facility_type),
             ethnicity_dist = (
               SELECT ethnicity , count (*) AS EthnicityPopulation
               FROM Persons p, DistrictAreas d3
               WHERE spatial_intersect(create_point(t.latitude , t.longitude), d3.district_area)
                 AND spatial_intersect(p.location , d3.district_area)
               GROUP BY p.ethnicity AS ethnicity)
             SELECT t.*, area_avg_income , area_facilities , ethnicity_dist
           };"#,
    )
    .unwrap();
}

#[test]
fn figure_40_worrisome_tweets_verbatim() {
    parse_statements(
        r#"CREATE FUNCTION enrichTweetQ7(t) {
             LET nearby_religious_attacks = (
               SELECT r.religion_name AS religion , count(a.attack_record_id) AS attack_num
               FROM ReligiousBuildings r, AttackEvents a
               WHERE spatial_intersect(create_point(t.latitude , t.longitude),
                     create_circle(r.building_location , 3.0))
                 AND t.created_at < a.attack_datetime + duration("P2M")
                 AND t.created_at > a.attack_datetime
                 AND r.religion_name = a.related_religion
               GROUP BY r.religion_name)
             SELECT t.*, nearby_religious_attacks
           };"#,
    )
    .unwrap();
}

#[test]
fn figure_9_analytical_query_verbatim() {
    parse_query(
        r#"SELECT tweet.country Country , count(tweet) Num
           FROM Tweets tweet
           LET enrichedTweet = tweetSafetyCheck(tweet )[0]
           WHERE enrichedTweet.safety_check_flag = "Red"
           GROUP BY tweet.country"#,
    )
    .unwrap();
}

#[test]
fn figure_18_high_risk_verbatim() {
    parse_statements(
        r#"CREATE FUNCTION highRiskTweetCheck(t) {
             LET high_risk_flag = CASE
               t.country IN (SELECT VALUE s.country
                             FROM SensitiveWords s
                             GROUP BY s.country
                             ORDER BY count(s)
                             LIMIT 10)
               WHEN true THEN "Red" ELSE "Green"
             END
             SELECT t.*, high_risk_flag
           };"#,
    )
    .unwrap();
}

#[test]
fn figure_20_prepared_query_verbatim() {
    // `SELECT *` without a qualifier is outside the subset; the
    // qualified form is supported.
    assert!(parse_query("SELECT * FROM Tweets t WHERE t.id = $x").is_err());
    parse_query("SELECT t.* FROM Tweets t WHERE t.id = $x").unwrap();
}
